package redn

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// The SLO sentinel + flight recorder: the service noticing that it is
// unhealthy and capturing the evidence before it scrolls away.
//
// Three fixed-memory pieces run permanently once ServiceConfig.Sentinel
// is set: a ring tracer bounding the trace-span history (the same
// Tracer the whole fabric already plumbs, just with bounded
// retention), a metric-sample ring snapshotting the registry on an
// activity-armed tick, and an SLO engine evaluating burn-rate rules
// over those samples. When a rule transitions into firing, the
// sentinel freezes everything it has — trace window, metric timelines,
// resource bottleneck report, the rule's burn evidence — into a
// deterministic incident bundle (telemetry.Incident).
//
// The tick is armed by op arrivals (GetAsync / SetAsync / DeleteAsync
// / migrator ticks / workload bucket feeds) and re-arms itself only
// while the metrics are still moving, mirroring armMigration and
// armCompaction: an idle service leaves the simulation engine
// drainable, under sustained load the effect is a periodic sampler.

// Sentinel timing defaults: sample every DefaultSentinelEvery; rules
// confirm a burn on a DefaultSLOFast window and demand evidence volume
// over DefaultSLOSlow (the 1:5 fast/slow ratio of multi-window
// burn-rate alerting, scaled to fabric microseconds).
const (
	DefaultSentinelEvery = 50 * sim.Microsecond
	DefaultSLOFast       = 500 * sim.Microsecond
	DefaultSLOSlow       = 2500 * sim.Microsecond
	// DefaultSlowGetLat is the fleet latency SLO: a served get slower
	// than this is a "slow op" for the latency-burn rule.
	DefaultSlowGetLat = sim.Millisecond
	// DefaultMaxIncidents bounds retained incident bundles.
	DefaultMaxIncidents = 16
)

// DefaultSLORules is the anomaly taxonomy the sentinel watches out of
// the box. Classes: "crash" (suspicion transitions from timeout
// bursts), "overload" (admission sheds/deferrals and AIMD window-cut
// storms), "write-availability" (quorum failures), "outage" (workload
// buckets with zero hits, via FeedWorkloadBucket), "migration" (a
// resharding backlog sustained past the slow window), "migration-stall"
// (backlog with no segments sealing — stuck, not busy), "latency"
// (fleet-wide slow-get burn over the merged per-shard histograms), and
// "repair-backlog" (hint + repair queues sustained deep).
func DefaultSLORules() []telemetry.Rule {
	return []telemetry.Rule{
		{Name: "crash-suspects", Class: "crash",
			Metrics:   []string{"svc/suspects"},
			Threshold: 1, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
		{Name: "overload-shed", Class: "overload",
			Metrics:   []string{"svc/shed_gets", "svc/shed_writes", "svc/deferred_gets"},
			Threshold: 20, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
		{Name: "window-cut-storm", Class: "overload",
			Metrics:   []string{"svc/window_cuts"},
			Threshold: 10, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
		{Name: "quorum-errors", Class: "write-availability",
			Metrics:   []string{"svc/quorum_fails"},
			Threshold: 4, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
		{Name: "outage-buckets", Class: "outage",
			Metrics: []string{"wl/outage"}, Level: true,
			Threshold: 1, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
		{Name: "migration-backlog", Class: "migration",
			Metrics: []string{"svc/migrating_buckets"}, Level: true,
			Threshold: 1, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
		{Name: "migration-stall", Class: "migration-stall",
			Metrics: []string{"svc/migrating_buckets"}, Level: true,
			Threshold: 1, Fast: DefaultSLOFast, Slow: DefaultSLOSlow,
			StallOf: "svc/mig_segs_sealed"},
		{Name: "latency-burn", Class: "latency",
			Metrics:   []string{"fleet/get_slow"},
			Threshold: 50, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
		{Name: "repair-backlog", Class: "repair-backlog",
			Metrics: []string{"svc/hints_pending", "svc/repairs_pending"}, Level: true,
			Threshold: 256, Fast: DefaultSLOFast, Slow: DefaultSLOSlow},
	}
}

// sentinel is the per-service runtime state behind ServiceConfig.Sentinel.
type sentinel struct {
	rec       *telemetry.Recorder
	slo       *telemetry.SLO
	armed     bool
	incidents []*telemetry.Incident

	// fleetLat is the merge scratch for fleet-wide get percentiles:
	// reset and re-merged from the per-shard histograms at each gauge
	// sample, so the ~8 KiB buckets are reused, never reallocated.
	fleetLat sim.LatencyStats

	// Workload bucket feed (FeedWorkloadBucket): the last closed
	// open-loop bucket's hit/ack counts and the derived outage flag.
	wlWired        bool
	wlHits, wlAcks float64
	wlOutage       float64
}

// initSentinel builds the sentinel when configured. Runs after the
// registry and shards exist; the fleet gauges read s.order at sample
// time, so shards joining or draining later are covered automatically.
func (s *Service) initSentinel() {
	if !s.cfg.Sentinel {
		return
	}
	sen := &sentinel{}
	s.sen = sen
	// Fleet-wide latency SLO inputs: per-shard get histograms merged
	// into one distribution each sample (sim.LatencyStats.Merge).
	// fleet/get_slow is cumulative and monotone — a delta-able slow-op
	// counter; fleet/get_p99_us is the merged tail for timelines.
	s.reg.Gauge("fleet/get_slow", func() float64 {
		return float64(s.fleetGetLat().CountAbove(s.cfg.SlowGetLat))
	})
	s.reg.Gauge("fleet/get_p99_us", func() float64 {
		return float64(s.fleetGetLat().P99()) / float64(sim.Microsecond)
	})
	rules := s.cfg.SentinelRules
	if rules == nil {
		rules = DefaultSLORules()
	}
	samples := s.cfg.RecorderSamples
	if samples <= 0 {
		// Cover the widest rule's slow window with headroom, so
		// coverage-gated evaluation starts as soon as it validly can.
		var slow sim.Time
		for _, r := range rules {
			if r.Slow > slow {
				slow = r.Slow
			}
		}
		samples = int(slow/s.cfg.SentinelEvery) + 14
		if samples < telemetry.DefaultRingSamples {
			samples = telemetry.DefaultRingSamples
		}
	}
	sen.rec = telemetry.NewRecorder(s.tb.clu.Eng, s.reg, samples)
	sen.slo = telemetry.NewSLO(sen.rec, rules, s.cfg.MaxIncidents)
}

// fleetGetLat merges every shard's get-latency histogram into the
// sentinel's scratch stats and returns it (valid until the next call).
func (s *Service) fleetGetLat() *sim.LatencyStats {
	sen := s.sen
	sen.fleetLat.Reset()
	for _, sh := range s.order {
		sen.fleetLat.Merge(sh.getLat)
	}
	return &sen.fleetLat
}

// sentinelKick arms one sentinel tick SentinelEvery from now unless
// one is already pending — the activity-armed pattern shared with
// armMigration/armCompaction. Called from the op entry points; cheap
// enough (two loads and a branch) for every hot path, and a no-op
// with the sentinel off.
func (s *Service) sentinelKick() {
	sen := s.sen
	if sen == nil || sen.armed {
		return
	}
	sen.armed = true
	s.tb.clu.Eng.After(s.cfg.SentinelEvery, func() {
		sen.armed = false
		s.sentinelTick()
	})
}

// sentinelTick records one metric sample, evaluates the SLO rules,
// captures incident bundles for anything that fired, and re-arms while
// the metrics are still moving. Sampling is read-only with respect to
// simulation state, so a run with the sentinel on is op-for-op
// identical in virtual time to the same seed with it off.
func (s *Service) sentinelTick() {
	sen := s.sen
	sen.rec.Record()
	for _, a := range sen.slo.Evaluate() {
		s.captureIncident(a)
	}
	if sen.moving() {
		s.sentinelKick()
	}
}

// moving reports whether the last two samples differ — the disarm
// condition: when nothing changed across a full tick (no ops, gauges
// settled, backlog drained), the sampler stops until the next kick.
func (sen *sentinel) moving() bool {
	n := sen.rec.Len()
	if n < 2 {
		return true
	}
	a, b := sen.rec.At(n-2), sen.rec.At(n-1)
	if len(a.Metrics) != len(b.Metrics) {
		return true
	}
	for i := range a.Metrics {
		if a.Metrics[i].Value != b.Metrics[i].Value {
			return true
		}
	}
	return false
}

// captureIncident freezes the flight recorder into a bundle for one
// firing anomaly: the trace window (balanced for export), the metric
// timelines, the resource report, and the burn evidence. Bundles are
// kept in memory (Incidents()) and, with SentinelDir set, written as
// INCIDENT_<seq>_<class>.json as they fire.
func (s *Service) captureIncident(a telemetry.Anomaly) {
	sen := s.sen
	if len(sen.incidents) < s.cfg.MaxIncidents {
		inc := telemetry.BuildIncident(len(sen.incidents)+1, a, sen.rec, s.tr, s.resourceReport())
		if s.prov != nil && a.Class == "latency" {
			// Latency incidents carry their own explanation: the phase
			// decomposition at capture time says which leg of the
			// critical path the burn came from.
			inc.Provenance = s.prov.DecomposeAll()
		}
		sen.incidents = append(sen.incidents, inc)
		if dir := s.cfg.SentinelDir; dir != "" {
			name := fmt.Sprintf("INCIDENT_%d_%s.json", inc.Seq, a.Class)
			if f, err := os.Create(filepath.Join(dir, name)); err == nil {
				inc.WriteJSON(f)
				f.Close()
			}
		}
	}
	if s.cfg.OnAnomaly != nil {
		s.cfg.OnAnomaly(a)
	}
}

// Incidents returns the captured incident bundles, oldest first (nil
// with the sentinel off or while healthy).
func (s *Service) Incidents() []*telemetry.Incident {
	if s.sen == nil {
		return nil
	}
	return s.sen.incidents
}

// Recorder exposes the sentinel's metric-sample ring (nil when off).
func (s *Service) Recorder() *telemetry.Recorder {
	if s.sen == nil {
		return nil
	}
	return s.sen.rec
}

// FeedWorkloadBucket feeds one closed open-loop timeline bucket into
// the sentinel — the workload.OpenLoopConfig.OnBucket hook. hits and
// acks are the bucket's served-get and acked-write counts; a bucket
// with zero hits raises the wl/outage level the outage-buckets rule
// watches. No-op with the sentinel off.
func (s *Service) FeedWorkloadBucket(bucket int, hits, acks float64) {
	sen := s.sen
	if sen == nil {
		return
	}
	if !sen.wlWired {
		sen.wlWired = true
		s.reg.Gauge("wl/bucket_hits", func() float64 { return sen.wlHits })
		s.reg.Gauge("wl/bucket_acks", func() float64 { return sen.wlAcks })
		s.reg.Gauge("wl/outage", func() float64 { return sen.wlOutage })
	}
	sen.wlHits, sen.wlAcks = hits, acks
	if hits == 0 {
		sen.wlOutage = 1
	} else {
		sen.wlOutage = 0
	}
	_ = bucket
	s.sentinelKick()
}
