package redn

import (
	"bytes"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/workload"
)

// End-to-end: keys set through the service come back intact through
// NIC-offloaded pipelined gets on every shard.
func TestServiceRoundTrip(t *testing.T) {
	s := NewService(4, 2)
	const nKeys = 2000
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Sets != nKeys {
		t.Fatalf("sets %d, want %d", st.Sets, nKeys)
	}
	if st.Spills != 0 {
		t.Fatalf("%d keys spilled to NIC-unreachable slots at low load", st.Spills)
	}
	// Every shard should own a meaningful share of the ring.
	for _, sh := range st.Shards {
		if sh.Sets < nKeys/16 {
			t.Fatalf("shard %s owns only %d keys — ring imbalance", sh.ID, sh.Sets)
		}
	}

	done := 0
	for k := uint64(1); k <= nKeys; k++ {
		key := k
		s.GetAsync(key, 64, func(val []byte, lat Duration, ok bool) {
			done++
			if !ok {
				t.Errorf("get(%d) missed", key)
				return
			}
			if !bytes.Equal(val, Value(key, 64)) {
				t.Errorf("get(%d): wrong value", key)
			}
		})
	}
	s.Flush()
	s.Run()
	if done != nKeys {
		t.Fatalf("completed %d of %d gets", done, nKeys)
	}
	st = s.Stats()
	if st.Hits != nKeys || st.Misses != 0 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.MaxInFlight < 2 {
		t.Fatalf("pipeline never overlapped (max in flight %d)", st.MaxInFlight)
	}
}

// Cuckoo-kick placement keeps keys NIC-reachable far beyond the
// no-kick capacity; overflow is counted, not lost: spilled keys stay
// CPU-visible even though offloaded gets miss them.
func TestServicePlacementKicks(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 1, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
		Buckets: 256, MaxValLen: 64,
	})
	sh := s.order[0]
	const nKeys = 160 // ~62% load on 256 buckets
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Without kicks, random two-choice slot-0 placement at this load
	// loses >10% of keys; kicks must hold spills well under that.
	if st.Spills > nKeys/20 {
		t.Fatalf("%d of %d keys spilled despite kicks", st.Spills, nKeys)
	}
	// Every non-spilled key must sit exactly at one of its candidate
	// buckets (the NIC probes those addresses and nothing else).
	table := sh.table.Table()
	reachable := 0
	for k := uint64(1); k <= nKeys; k++ {
		for fn := 0; fn < 2; fn++ {
			if got, _, _, ok := table.EntryAt(table.Hash(k, fn)); ok && got == k {
				reachable++
				break
			}
		}
	}
	if reachable != nKeys-int(st.Spills) {
		t.Fatalf("reachable=%d, want %d - %d spills", reachable, nKeys, st.Spills)
	}
	// And all keys, spilled or not, remain CPU-visible.
	for k := uint64(1); k <= nKeys; k++ {
		if _, _, ok := table.Lookup(k); !ok {
			t.Fatalf("key %d lost during kicks", k)
		}
	}
}

// Replicated sets land on distinct shards; the primary serves gets.
func TestServiceReplication(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 4, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, Replicas: 2,
	})
	const nKeys = 400
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Sets != 2*nKeys {
		t.Fatalf("replicated sets %d, want %d", st.Sets, 2*nKeys)
	}
	val, _, ok := s.Get(7, 64)
	if !ok || !bytes.Equal(val, Value(7, 64)) {
		t.Fatal("replicated get failed")
	}
}

// The whole service stack must be deterministic: identical runs yield
// identical virtual-time outcomes.
func TestServiceDeterministic(t *testing.T) {
	run := func() (sim.Time, ServiceStats, workload.LoadReport) {
		s := NewService(2, 2)
		keys := make([]uint64, 500)
		for i := range keys {
			keys[i] = uint64(i + 1)
			s.Set(keys[i], Value(keys[i], 64))
		}
		rep := workload.RunClosedLoop(s.Testbed().clu.Eng, s, workload.ClosedLoopConfig{
			Requests:   3000,
			Window:     32,
			Keys:       workload.NewZipfian(keys, workload.DefaultZipfS, workload.Rng(1)),
			ValLen:     64,
			WriteEvery: 10,
		})
		return s.Now(), s.Stats(), rep
	}
	t1, s1, r1 := run()
	t2, s2, r2 := run()
	if t1 != t2 {
		t.Fatalf("virtual clocks diverged: %v vs %v", t1, t2)
	}
	if s1.Hits != s2.Hits || s1.Misses != s2.Misses || s1.Gets != s2.Gets {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if r1.GetsPerSec != r2.GetsPerSec || r1.P99 != r2.P99 {
		t.Fatalf("reports diverged: %v vs %v", r1, r2)
	}
	if r1.Misses != 0 {
		t.Fatalf("%d misses on a fully resident key set", r1.Misses)
	}
}

// Round-robin replica reads spread a single hot key's gets across all
// of its owners; read-primary concentrates them on one shard.
func TestServiceReadSpreading(t *testing.T) {
	run := func(policy ReadPolicy) map[string]uint64 {
		s := NewServiceWith(ServiceConfig{
			Shards: 4, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
			Replicas: 3, ReadPolicy: policy,
		})
		const hot = 42
		if err := s.Set(hot, Value(hot, 64)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			s.GetAsync(hot, 64, func(_ []byte, _ Duration, ok bool) {
				if !ok {
					t.Error("hot get missed")
				}
			})
		}
		s.Flush()
		s.Run()
		per := map[string]uint64{}
		for _, sh := range s.Stats().Shards {
			per[sh.ID] = sh.Gets
		}
		return per
	}

	primary := run(ReadPrimary)
	busy := 0
	for _, g := range primary {
		if g > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("read-primary touched %d shards for one key, want 1", busy)
	}

	for _, policy := range []ReadPolicy{ReadRoundRobin, ReadLeastInflight} {
		spread := run(policy)
		busy = 0
		for _, g := range spread {
			if g >= 50 {
				busy++
			}
		}
		if busy != 3 {
			t.Fatalf("%v sent meaningful load to %d shards, want all 3 owners", policy, busy)
		}
	}
}

// Hot-spread routes only tracked-hot keys off their primary; a
// once-touched cold key stays put.
func TestServiceHotSpreadColdStaysPrimary(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 4, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 3, ReadPolicy: ReadHotSpread, HotKeyTrack: 4,
	})
	// 40 cold keys cycle through a 4-entry tracker: none stays hot long
	// enough to matter, but one repeated key does.
	keys := make([]uint64, 40)
	for i := range keys {
		keys[i] = uint64(i + 1)
		if err := s.Set(keys[i], Value(keys[i], 64)); err != nil {
			t.Fatal(err)
		}
	}
	const hot = 7
	for i := 0; i < 400; i++ {
		k := keys[i%len(keys)]
		if i%2 == 1 {
			k = hot
		}
		s.GetAsync(k, 64, func(_ []byte, _ Duration, _ bool) {})
	}
	s.Flush()
	s.Run()
	// The hot key's three owners all served it; total spread across the
	// cluster stays bounded (cold keys kept primary routing).
	hotOwners := map[string]bool{}
	for _, id := range s.Owners(hot) {
		hotOwners[id] = true
	}
	if len(hotOwners) != 3 {
		t.Fatalf("hot key has %d owners, want 3", len(hotOwners))
	}
	for _, sh := range s.Stats().Shards {
		if hotOwners[sh.ID] && sh.Gets < 40 {
			t.Fatalf("hot owner %s served only %d gets; hot key not spread", sh.ID, sh.Gets)
		}
	}
}

// The client-side cache serves tracked-hot keys without touching the
// ring, and writes keep it coherent.
func TestServiceHotKeyCache(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 2, HotKeyCache: 8,
	})
	const hot = 99
	if err := s.Set(hot, Value(hot, 64)); err != nil {
		t.Fatal(err)
	}
	get := func() []byte {
		val, _, ok := s.Get(hot, 64)
		if !ok {
			t.Fatal("hot get missed")
		}
		return val
	}
	for i := 0; i < 20; i++ {
		get()
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no cache hits after 20 accesses of one hot key")
	}
	ringGets := st.Gets
	// A set must update (not stale-serve) the cached value...
	if err := s.Set(hot, Value(hot+1, 64)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(get(), Value(hot+1, 64)) {
		t.Fatal("cache served a stale value after Set")
	}
	// ...and the refreshed get still comes from the cache.
	if s.Stats().Gets != ringGets {
		t.Fatal("post-Set get went to the ring despite a fresh cache entry")
	}
}

// A process crash with replicas: gets fail over to the backup owner,
// the dead shard is circuit-broken, and the rebuilt shard serves again
// after reconnect — all without losing a single get to a false miss.
func TestServiceCrashFailover(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 2, ReadPolicy: ReadRoundRobin,
	})
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i + 1)
		if err := s.Set(keys[i], Value(keys[i], 64)); err != nil {
			t.Fatal(err)
		}
	}
	crashAt := s.Now() + sim.Millisecond
	s.CrashShard(0, failure.ProcessCrash, crashAt)

	// Issue gets in closed loops across the crash and recovery window.
	misses := 0
	done := 0
	const total = 10000
	issued := 0
	var user func()
	user = func() {
		if issued >= total {
			return
		}
		k := keys[issued%len(keys)]
		issued++
		s.GetAsync(k, 64, func(_ []byte, _ Duration, ok bool) {
			done++
			if !ok {
				misses++
			}
			user()
			s.Flush()
		})
	}
	for i := 0; i < 8; i++ {
		user()
	}
	s.Flush()
	s.Run()

	if done != total {
		t.Fatalf("completed %d of %d gets across the crash", done, total)
	}
	if misses != 0 {
		t.Fatalf("%d gets lost to the crash despite a live replica", misses)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatal("no failover retries recorded across a crash")
	}
	if st.Shards[0].Rebuilds != 1 {
		t.Fatalf("crashed shard rebuilt %d times, want 1", st.Shards[0].Rebuilds)
	}
	// Sets to the crashed shard error while its host is down.
	if s.Now() <= crashAt {
		t.Fatal("run ended before the crash")
	}
}

// Without replicas, a crashed shard's keys miss for the outage window
// but the service itself keeps running and recovers after reconnect.
func TestServiceCrashNoReplicaRecovers(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
	})
	const key = 17
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatal(err)
	}
	owner := s.Owners(key)[0]
	idx := 0
	for i, sh := range []string{s.ShardID(0), s.ShardID(1)} {
		if sh == owner {
			idx = i
		}
	}
	crashAt := s.Now() + sim.Millisecond
	s.CrashShard(idx, failure.ProcessCrash, crashAt)
	s.Testbed().RunFor(2 * sim.Millisecond)

	if _, _, ok := s.Get(key, 64); ok {
		t.Fatal("get succeeded on a frozen shard with no replica")
	}
	// Sets to the dead host fail.
	if err := s.Set(key, Value(key, 64)); err == nil {
		t.Fatal("set succeeded on a crashed host")
	}
	// Ride past bootstrap + rebuild: reconnected clients serve again.
	s.Testbed().RunFor(3 * sim.Second)
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatalf("set after recovery: %v", err)
	}
	val, _, ok := s.Get(key, 64)
	if !ok || !bytes.Equal(val, Value(key, 64)) {
		t.Fatal("get failed after recovery and reconnect")
	}
}

// Absent-key misses execute their chains on a live NIC and must not
// advance the crash detector: a healthy shard never gets suspected by
// workload misses.
func TestServiceAbsentKeysDoNotSuspect(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, Replicas: 2,
	})
	if err := s.Set(1, Value(1, 64)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*DefaultSuspectAfter; i++ {
		if _, _, ok := s.Get(100000+uint64(i), 64); ok {
			t.Fatal("absent key found")
		}
	}
	for _, sh := range s.order {
		if sh.consecMiss != 0 || sh.suspectUntil != 0 {
			t.Fatalf("shard %s suspected by genuine misses (consecMiss=%d)", sh.id, sh.consecMiss)
		}
	}
	if _, _, ok := s.Get(1, 64); !ok {
		t.Fatal("present key missed after absent-key run")
	}
}

// A set refused because one owner's host is down must not have written
// the other owners — replicas never diverge.
func TestServiceSetAllOrNothing(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, Replicas: 2,
	})
	const key = 21
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatal(err)
	}
	// Take one owner's host down and overwrite: the set must fail and
	// leave BOTH owners serving the old value.
	owner1 := s.Owners(key)[1]
	s.shards[owner1].hostDown = true
	if err := s.Set(key, Value(key+1, 64)); err == nil {
		t.Fatal("set succeeded with an owner down")
	}
	s.shards[owner1].hostDown = false
	for _, id := range s.Owners(key) {
		sh := s.shards[id]
		va, vl, ok := sh.table.Table().Lookup(key)
		if !ok {
			t.Fatalf("owner %s lost the key", id)
		}
		v, _ := sh.srv.node.Mem.Read(va, vl)
		if !bytes.Equal(v, Value(key, 64)) {
			t.Fatalf("owner %s diverged after a refused set", id)
		}
	}
}

// A set racing an in-flight get must not let the get's (stale)
// response be admitted to the cache afterward.
func TestServiceCacheAdmissionSetRace(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, HotKeyCache: 8,
	})
	const hot = 5
	if err := s.Set(hot, Value(hot, 64)); err != nil {
		t.Fatal(err)
	}
	// Heat the key past the admission threshold WITHOUT letting any get
	// complete yet: issue the gets, then Set v2 before running.
	for i := 0; i < 2*cacheAdmitCount; i++ {
		s.GetAsync(hot, 64, func(_ []byte, _ Duration, _ bool) {})
	}
	s.Flush()
	if err := s.Set(hot, Value(hot+1, 64)); err != nil {
		t.Fatal(err)
	}
	s.Run() // in-flight gets (which read v1 or v2) complete now
	// Whatever happened, the next get must observe v2.
	val, _, ok := s.Get(hot, 64)
	if !ok || !bytes.Equal(val, Value(hot+1, 64)) {
		t.Fatal("stale value served after a racing set")
	}
}
