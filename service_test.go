package redn

import (
	"bytes"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// End-to-end: keys set through the service come back intact through
// NIC-offloaded pipelined gets on every shard.
func TestServiceRoundTrip(t *testing.T) {
	s := NewService(4, 2)
	const nKeys = 2000
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Sets != nKeys {
		t.Fatalf("sets %d, want %d", st.Sets, nKeys)
	}
	if st.Spills != 0 {
		t.Fatalf("%d keys spilled to NIC-unreachable slots at low load", st.Spills)
	}
	// Every shard should own a meaningful share of the ring.
	for _, sh := range st.Shards {
		if sh.Sets < nKeys/16 {
			t.Fatalf("shard %s owns only %d keys — ring imbalance", sh.ID, sh.Sets)
		}
	}

	done := 0
	for k := uint64(1); k <= nKeys; k++ {
		key := k
		s.GetAsync(key, 64, func(val []byte, lat Duration, ok bool) {
			done++
			if !ok {
				t.Errorf("get(%d) missed", key)
				return
			}
			if !bytes.Equal(val, Value(key, 64)) {
				t.Errorf("get(%d): wrong value", key)
			}
		})
	}
	s.Flush()
	s.Run()
	if done != nKeys {
		t.Fatalf("completed %d of %d gets", done, nKeys)
	}
	st = s.Stats()
	if st.Hits != nKeys || st.Misses != 0 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.MaxInFlight < 2 {
		t.Fatalf("pipeline never overlapped (max in flight %d)", st.MaxInFlight)
	}
}

// Cuckoo-kick placement keeps keys NIC-reachable far beyond the
// no-kick capacity; overflow is counted, not lost: spilled keys stay
// CPU-visible even though offloaded gets miss them.
func TestServicePlacementKicks(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 1, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
		Buckets: 256, MaxValLen: 64,
	})
	sh := s.order[0]
	const nKeys = 160 // ~62% load on 256 buckets
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Without kicks, random two-choice slot-0 placement at this load
	// loses >10% of keys; kicks must hold spills well under that.
	if st.Spills > nKeys/20 {
		t.Fatalf("%d of %d keys spilled despite kicks", st.Spills, nKeys)
	}
	// Every non-spilled key must sit exactly at one of its candidate
	// buckets (the NIC probes those addresses and nothing else).
	table := sh.table.Table()
	reachable := 0
	for k := uint64(1); k <= nKeys; k++ {
		for fn := 0; fn < 2; fn++ {
			if got, _, _, ok := table.EntryAt(table.Hash(k, fn)); ok && got == k {
				reachable++
				break
			}
		}
	}
	if reachable != nKeys-int(st.Spills) {
		t.Fatalf("reachable=%d, want %d - %d spills", reachable, nKeys, st.Spills)
	}
	// And all keys, spilled or not, remain CPU-visible.
	for k := uint64(1); k <= nKeys; k++ {
		if _, _, ok := table.Lookup(k); !ok {
			t.Fatalf("key %d lost during kicks", k)
		}
	}
}

// Replicated sets land on distinct shards; the primary serves gets.
func TestServiceReplication(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 4, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, Replicas: 2,
	})
	const nKeys = 400
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Sets != 2*nKeys {
		t.Fatalf("replicated sets %d, want %d", st.Sets, 2*nKeys)
	}
	val, _, ok := s.Get(7, 64)
	if !ok || !bytes.Equal(val, Value(7, 64)) {
		t.Fatal("replicated get failed")
	}
}

// The whole service stack must be deterministic: identical runs yield
// identical virtual-time outcomes.
func TestServiceDeterministic(t *testing.T) {
	run := func() (sim.Time, ServiceStats, workload.LoadReport) {
		s := NewService(2, 2)
		keys := make([]uint64, 500)
		for i := range keys {
			keys[i] = uint64(i + 1)
			s.Set(keys[i], Value(keys[i], 64))
		}
		rep := workload.RunClosedLoop(s.Testbed().clu.Eng, s, workload.ClosedLoopConfig{
			Requests: 3000,
			Window:   32,
			Keys:     workload.NewZipfian(keys, workload.DefaultZipfS, workload.Rng(1)),
			ValLen:   64,
			WriteEvery: 10,
		})
		return s.Now(), s.Stats(), rep
	}
	t1, s1, r1 := run()
	t2, s2, r2 := run()
	if t1 != t2 {
		t.Fatalf("virtual clocks diverged: %v vs %v", t1, t2)
	}
	if s1.Hits != s2.Hits || s1.Misses != s2.Misses || s1.Gets != s2.Gets {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if r1.GetsPerSec != r2.GetsPerSec || r1.P99 != r2.P99 {
		t.Fatalf("reports diverged: %v vs %v", r1, r2)
	}
	if r1.Misses != 0 {
		t.Fatalf("%d misses on a fully resident key set", r1.Misses)
	}
}
