package redn

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/workload"
)

// End-to-end: keys set through the service come back intact through
// NIC-offloaded pipelined gets on every shard.
func TestServiceRoundTrip(t *testing.T) {
	s := NewService(4, 2)
	const nKeys = 2000
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Sets != nKeys {
		t.Fatalf("sets %d, want %d", st.Sets, nKeys)
	}
	if st.Spills != 0 {
		t.Fatalf("%d keys spilled to NIC-unreachable slots at low load", st.Spills)
	}
	// Every shard should own a meaningful share of the ring.
	for _, sh := range st.Shards {
		if sh.Sets < nKeys/16 {
			t.Fatalf("shard %s owns only %d keys — ring imbalance", sh.ID, sh.Sets)
		}
	}

	done := 0
	for k := uint64(1); k <= nKeys; k++ {
		key := k
		s.GetAsync(key, 64, func(val []byte, lat Duration, ok bool) {
			done++
			if !ok {
				t.Errorf("get(%d) missed", key)
				return
			}
			if !bytes.Equal(val, Value(key, 64)) {
				t.Errorf("get(%d): wrong value", key)
			}
		})
	}
	s.Flush()
	s.Run()
	if done != nKeys {
		t.Fatalf("completed %d of %d gets", done, nKeys)
	}
	st = s.Stats()
	if st.Hits != nKeys || st.Misses != 0 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
	if st.MaxInFlight < 2 {
		t.Fatalf("pipeline never overlapped (max in flight %d)", st.MaxInFlight)
	}
}

// Cuckoo-kick placement keeps keys NIC-reachable far beyond the
// no-kick capacity; overflow is counted, not lost: spilled keys stay
// CPU-visible even though offloaded gets miss them.
func TestServicePlacementKicks(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 1, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
		Buckets: 256, MaxValLen: 64,
	})
	sh := s.order[0]
	const nKeys = 160 // ~62% load on 256 buckets
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 16)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	// Without kicks, random two-choice slot-0 placement at this load
	// loses >10% of keys; kicks must hold spills well under that.
	if st.Spills > nKeys/20 {
		t.Fatalf("%d of %d keys spilled despite kicks", st.Spills, nKeys)
	}
	// Every non-spilled key must sit exactly at one of its candidate
	// buckets (the NIC probes those addresses and nothing else).
	table := sh.table.Table()
	reachable := 0
	for k := uint64(1); k <= nKeys; k++ {
		for fn := 0; fn < 2; fn++ {
			if got, _, _, ok := table.EntryAt(table.Hash(k, fn)); ok && got == k {
				reachable++
				break
			}
		}
	}
	if reachable != nKeys-int(st.Spills) {
		t.Fatalf("reachable=%d, want %d - %d spills", reachable, nKeys, st.Spills)
	}
	// And all keys, spilled or not, remain CPU-visible.
	for k := uint64(1); k <= nKeys; k++ {
		if _, _, ok := table.Lookup(k); !ok {
			t.Fatalf("key %d lost during kicks", k)
		}
	}
}

// Replicated sets land on distinct shards; the primary serves gets.
func TestServiceReplication(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 4, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, Replicas: 2,
	})
	const nKeys = 400
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Sets != 2*nKeys {
		t.Fatalf("replicated sets %d, want %d", st.Sets, 2*nKeys)
	}
	val, _, ok := s.Get(7, 64)
	if !ok || !bytes.Equal(val, Value(7, 64)) {
		t.Fatal("replicated get failed")
	}
}

// The whole service stack must be deterministic: identical runs yield
// identical virtual-time outcomes.
func TestServiceDeterministic(t *testing.T) {
	run := func() (sim.Time, ServiceStats, workload.LoadReport) {
		s := NewService(2, 2)
		keys := make([]uint64, 500)
		for i := range keys {
			keys[i] = uint64(i + 1)
			s.Set(keys[i], Value(keys[i], 64))
		}
		rep := workload.RunClosedLoop(s.Testbed().clu.Eng, s, workload.ClosedLoopConfig{
			Requests:   3000,
			Window:     32,
			Keys:       workload.NewZipfian(keys, workload.DefaultZipfS, workload.Rng(1)),
			ValLen:     64,
			WriteEvery: 10,
		})
		return s.Now(), s.Stats(), rep
	}
	t1, s1, r1 := run()
	t2, s2, r2 := run()
	if t1 != t2 {
		t.Fatalf("virtual clocks diverged: %v vs %v", t1, t2)
	}
	if s1.Hits != s2.Hits || s1.Misses != s2.Misses || s1.Gets != s2.Gets {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if r1.GetsPerSec != r2.GetsPerSec || r1.P99 != r2.P99 {
		t.Fatalf("reports diverged: %v vs %v", r1, r2)
	}
	if r1.Misses != 0 {
		t.Fatalf("%d misses on a fully resident key set", r1.Misses)
	}
}

// Round-robin replica reads spread a single hot key's gets across all
// of its owners; read-primary concentrates them on one shard.
func TestServiceReadSpreading(t *testing.T) {
	run := func(policy ReadPolicy) map[string]uint64 {
		s := NewServiceWith(ServiceConfig{
			Shards: 4, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
			Replicas: 3, ReadPolicy: policy,
		})
		const hot = 42
		if err := s.Set(hot, Value(hot, 64)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			s.GetAsync(hot, 64, func(_ []byte, _ Duration, ok bool) {
				if !ok {
					t.Error("hot get missed")
				}
			})
		}
		s.Flush()
		s.Run()
		per := map[string]uint64{}
		for _, sh := range s.Stats().Shards {
			per[sh.ID] = sh.Gets
		}
		return per
	}

	primary := run(ReadPrimary)
	busy := 0
	for _, g := range primary {
		if g > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("read-primary touched %d shards for one key, want 1", busy)
	}

	for _, policy := range []ReadPolicy{ReadRoundRobin, ReadLeastInflight} {
		spread := run(policy)
		busy = 0
		for _, g := range spread {
			if g >= 50 {
				busy++
			}
		}
		if busy != 3 {
			t.Fatalf("%v sent meaningful load to %d shards, want all 3 owners", policy, busy)
		}
	}
}

// Hot-spread routes only tracked-hot keys off their primary; a
// once-touched cold key stays put.
func TestServiceHotSpreadColdStaysPrimary(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 4, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 3, ReadPolicy: ReadHotSpread, HotKeyTrack: 4,
	})
	// 40 cold keys cycle through a 4-entry tracker: none stays hot long
	// enough to matter, but one repeated key does.
	keys := make([]uint64, 40)
	for i := range keys {
		keys[i] = uint64(i + 1)
		if err := s.Set(keys[i], Value(keys[i], 64)); err != nil {
			t.Fatal(err)
		}
	}
	const hot = 7
	for i := 0; i < 400; i++ {
		k := keys[i%len(keys)]
		if i%2 == 1 {
			k = hot
		}
		s.GetAsync(k, 64, func(_ []byte, _ Duration, _ bool) {})
	}
	s.Flush()
	s.Run()
	// The hot key's three owners all served it; total spread across the
	// cluster stays bounded (cold keys kept primary routing).
	hotOwners := map[string]bool{}
	for _, id := range s.Owners(hot) {
		hotOwners[id] = true
	}
	if len(hotOwners) != 3 {
		t.Fatalf("hot key has %d owners, want 3", len(hotOwners))
	}
	for _, sh := range s.Stats().Shards {
		if hotOwners[sh.ID] && sh.Gets < 40 {
			t.Fatalf("hot owner %s served only %d gets; hot key not spread", sh.ID, sh.Gets)
		}
	}
}

// The client-side cache serves tracked-hot keys without touching the
// ring, and writes keep it coherent.
func TestServiceHotKeyCache(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 2, HotKeyCache: 8,
	})
	const hot = 99
	if err := s.Set(hot, Value(hot, 64)); err != nil {
		t.Fatal(err)
	}
	get := func() []byte {
		val, _, ok := s.Get(hot, 64)
		if !ok {
			t.Fatal("hot get missed")
		}
		return val
	}
	for i := 0; i < 20; i++ {
		get()
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Fatal("no cache hits after 20 accesses of one hot key")
	}
	ringGets := st.Gets
	// A set must update (not stale-serve) the cached value...
	if err := s.Set(hot, Value(hot+1, 64)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(get(), Value(hot+1, 64)) {
		t.Fatal("cache served a stale value after Set")
	}
	// ...and the refreshed get still comes from the cache.
	if s.Stats().Gets != ringGets {
		t.Fatal("post-Set get went to the ring despite a fresh cache entry")
	}
}

// A process crash with replicas: gets fail over to the backup owner,
// the dead shard is circuit-broken, and the rebuilt shard serves again
// after reconnect — all without losing a single get to a false miss.
func TestServiceCrashFailover(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 2, ReadPolicy: ReadRoundRobin,
	})
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = uint64(i + 1)
		if err := s.Set(keys[i], Value(keys[i], 64)); err != nil {
			t.Fatal(err)
		}
	}
	crashAt := s.Now() + sim.Millisecond
	s.CrashShard(0, failure.ProcessCrash, crashAt)

	// Issue gets in closed loops across the crash and recovery window.
	misses := 0
	done := 0
	const total = 10000
	issued := 0
	var user func()
	user = func() {
		if issued >= total {
			return
		}
		k := keys[issued%len(keys)]
		issued++
		s.GetAsync(k, 64, func(_ []byte, _ Duration, ok bool) {
			done++
			if !ok {
				misses++
			}
			user()
			s.Flush()
		})
	}
	for i := 0; i < 8; i++ {
		user()
	}
	s.Flush()
	s.Run()

	if done != total {
		t.Fatalf("completed %d of %d gets across the crash", done, total)
	}
	if misses != 0 {
		t.Fatalf("%d gets lost to the crash despite a live replica", misses)
	}
	st := s.Stats()
	if st.Retries == 0 {
		t.Fatal("no failover retries recorded across a crash")
	}
	if st.Shards[0].Rebuilds != 1 {
		t.Fatalf("crashed shard rebuilt %d times, want 1", st.Shards[0].Rebuilds)
	}
	// Sets to the crashed shard error while its host is down.
	if s.Now() <= crashAt {
		t.Fatal("run ended before the crash")
	}
}

// Without replicas, a crashed shard's keys miss for the outage window
// but the service itself keeps running and recovers after reconnect.
func TestServiceCrashNoReplicaRecovers(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
	})
	const key = 17
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatal(err)
	}
	owner := s.Owners(key)[0]
	idx := 0
	for i, sh := range []string{s.ShardID(0), s.ShardID(1)} {
		if sh == owner {
			idx = i
		}
	}
	crashAt := s.Now() + sim.Millisecond
	s.CrashShard(idx, failure.ProcessCrash, crashAt)
	s.Testbed().RunFor(2 * sim.Millisecond)

	if _, _, ok := s.Get(key, 64); ok {
		t.Fatal("get succeeded on a frozen shard with no replica")
	}
	// Sets to the dead host fail.
	if err := s.Set(key, Value(key, 64)); err == nil {
		t.Fatal("set succeeded on a crashed host")
	}
	// Ride past bootstrap + rebuild: reconnected clients serve again.
	s.Testbed().RunFor(3 * sim.Second)
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatalf("set after recovery: %v", err)
	}
	val, _, ok := s.Get(key, 64)
	if !ok || !bytes.Equal(val, Value(key, 64)) {
		t.Fatal("get failed after recovery and reconnect")
	}
}

// Absent-key misses execute their chains on a live NIC and must not
// advance the crash detector: a healthy shard never gets suspected by
// workload misses.
func TestServiceAbsentKeysDoNotSuspect(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, Replicas: 2,
	})
	if err := s.Set(1, Value(1, 64)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*DefaultSuspectAfter; i++ {
		if _, _, ok := s.Get(100000+uint64(i), 64); ok {
			t.Fatal("absent key found")
		}
	}
	for _, sh := range s.order {
		if sh.consecMiss != 0 || sh.suspectUntil != 0 {
			t.Fatalf("shard %s suspected by genuine misses (consecMiss=%d)", sh.id, sh.consecMiss)
		}
	}
	if _, _, ok := s.Get(1, 64); !ok {
		t.Fatal("present key missed after absent-key run")
	}
}

// ownerValue reads key's bytes straight out of one owner's table (the
// CPU-visible ground truth, bypassing the fabric).
func ownerValue(t *testing.T, s *Service, id string, key uint64) ([]byte, bool) {
	t.Helper()
	sh := s.shards[id]
	va, vl, ok := sh.table.Table().Lookup(key)
	if !ok {
		return nil, false
	}
	v, err := sh.srv.node.Mem.Read(va, vl)
	if err != nil {
		t.Fatalf("owner %s value read: %v", id, err)
	}
	return v, true
}

// Regression for the torn-replica bug: the old Set returned on the
// first owner error, leaving earlier owners updated and the write
// neither done nor undone. Partial writes are now explicit: a failed
// write-all quorum reports a typed *QuorumError, the owners that
// applied KEEP the new value (roll forward, never roll back), and
// hinted handoff completes the write on the dead owner at recovery —
// replicas converge instead of diverging.
func TestServiceSetRollsForward(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, Replicas: 2,
	})
	const key = 21
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatal(err)
	}
	owners := s.Owners(key)
	idx := 0
	for i := 0; i < s.NumShards(); i++ {
		if s.ShardID(i) == owners[1] {
			idx = i
		}
	}
	crashAt := s.Now() + sim.Millisecond
	s.CrashShard(idx, failure.ProcessCrash, crashAt)
	s.Testbed().RunFor(2 * sim.Millisecond) // NIC frozen, host down

	// Overwrite with one of two owners dead under write-all (W=N=2).
	err := s.Set(key, Value(key+1, 64))
	var qe *QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("want *QuorumError with an owner down, got %v", err)
	}
	if qe.Acks != 1 || qe.Need != 2 {
		t.Fatalf("quorum error %+v, want 1/2 acks", qe)
	}
	// The live owner rolled FORWARD: it serves the new value already.
	if v, ok := ownerValue(t, s, owners[0], key); !ok || !bytes.Equal(v, Value(key+1, 64)) {
		t.Fatal("surviving owner does not hold the new value after a failed quorum")
	}
	// The dead owner still has the old value, with a hint queued.
	if v, ok := ownerValue(t, s, owners[1], key); !ok || !bytes.Equal(v, Value(key, 64)) {
		t.Fatal("dead owner's table changed while its host was down")
	}
	if st := s.Stats(); st.HintsPending != 1 || st.QuorumFails != 1 {
		t.Fatalf("hints pending %d / quorum fails %d, want 1/1", st.HintsPending, st.QuorumFails)
	}
	// Recovery drains the hint: replicas converge on the new value.
	s.Testbed().RunFor(4 * sim.Second)
	for _, id := range owners {
		if v, ok := ownerValue(t, s, id, key); !ok || !bytes.Equal(v, Value(key+1, 64)) {
			t.Fatalf("owner %s did not converge after handoff", id)
		}
	}
	st := s.Stats()
	if st.HintsApplied != 1 || st.HintsPending != 0 {
		t.Fatalf("hints applied %d pending %d, want 1/0", st.HintsApplied, st.HintsPending)
	}
}

// A set racing an in-flight get must not let the get's (stale)
// response be admitted to the cache afterward.
func TestServiceCacheAdmissionSetRace(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq, HotKeyCache: 8,
	})
	const hot = 5
	if err := s.Set(hot, Value(hot, 64)); err != nil {
		t.Fatal(err)
	}
	// Heat the key past the admission threshold WITHOUT letting any get
	// complete yet: issue the gets, then Set v2 before running.
	for i := 0; i < 2*cacheAdmitCount; i++ {
		s.GetAsync(hot, 64, func(_ []byte, _ Duration, _ bool) {})
	}
	s.Flush()
	if err := s.Set(hot, Value(hot+1, 64)); err != nil {
		t.Fatal(err)
	}
	s.Run() // in-flight gets (which read v1 or v2) complete now
	// Whatever happened, the next get must observe v2.
	val, _, ok := s.Get(hot, 64)
	if !ok || !bytes.Equal(val, Value(hot+1, 64)) {
		t.Fatal("stale value served after a racing set")
	}
}

// ---- write-path consistency suite ----

// Linearizability-style checker over a concurrent mixed history of
// gets, sets AND deletes: every value a read returns must have been
// written by an overlapping or earlier write, and once a write has
// settled on EVERY owner (applied, drained, or superseded — the settle
// hook), no later read may return an older value; a read may observe
// "absent" only when a delete could explain it. Replica lag and hinted
// handoff are allowed to serve stale states only while the newer
// write/delete is still unsettled; the client cache AND the background
// compactor are in the loop. A shard crashes and recovers mid-run.
func TestServiceLinearizableMixedHistory(t *testing.T) {
	runLinearizableHistory(t, false)
}

// The same checker with the repair subsystem fully in the loop:
// read-repair probes on every replicated hit, the anti-entropy sweeper
// rotating underneath the history, and — crucially — every handoff
// hint DROPPED right after the crash, so the repair machinery (not
// hinted handoff) is what converges the recovered shard. Repairs
// re-apply old sequences to laggards; the checker's per-owner apply
// logs prove they only ever roll replicas forward.
func TestServiceLinearizableRepairHistory(t *testing.T) {
	runLinearizableHistory(t, true)
}

func runLinearizableHistory(t *testing.T, withRepair bool) {
	cfg := ServiceConfig{
		Shards: 3, ClientsPerShard: 2, Pipeline: 8, Mode: LookupSeq,
		Replicas: 3, WriteQuorum: 2, ReadPolicy: ReadRoundRobin, HotKeyCache: 8,
		Buckets: 1 << 12, MaxValLen: 64,
		// Compaction churns the arena underneath the history: relocated
		// extents must never corrupt or resurrect anything. Small
		// segments (16 extents each) keep it genuinely busy.
		CompactEvery: 250 * sim.Microsecond, SegmentSize: 1 << 10,
	}
	if withRepair {
		cfg.ReadRepair = true
		cfg.AntiEntropyEvery = 300 * sim.Microsecond
		cfg.AntiEntropySegments = 16
	}
	s := NewServiceWith(cfg)
	const nKeys = 8
	const valLen = 48

	type wrec struct {
		seq   uint64
		del   bool
		start sim.Time
		acked bool
		err   error
	}
	writes := make(map[uint64][]*wrec)
	// applies[key][owner] is the monotone (time, seq) apply log of one
	// replica — the ground truth for when a value became visible there.
	type apply struct {
		at  sim.Time
		seq uint64
	}
	applies := make(map[uint64]map[string][]apply)
	s.applyHook = func(shardID string, key, seq uint64) {
		if applies[key] == nil {
			applies[key] = make(map[string][]apply)
		}
		log := applies[key][shardID]
		if n := len(log); n > 0 && seq < log[n-1].seq {
			t.Fatalf("owner %s applied key %d seq %d after seq %d — replica went backward",
				shardID, key, seq, log[n-1].seq)
		}
		applies[key][shardID] = append(log, apply{at: s.Now(), seq: seq})
	}
	val := func(key, seq uint64) []byte { return Value(key*1_000_000+seq, valLen) }

	// Preload every key (seq 1) while all shards are healthy, so the
	// history never races a key's very first bucket claim.
	for k := uint64(1); k <= nKeys; k++ {
		w := &wrec{seq: 1, start: s.Now()}
		writes[k] = append(writes[k], w)
		if err := s.Set(k, val(k, 1)); err != nil {
			t.Fatal(err)
		}
		w.acked = true
	}

	type rrec struct {
		key        uint64
		start, end sim.Time
		val        []byte
		miss       bool
	}
	var reads []rrec

	rng := workload.Rng(3)
	const totalOps = 4000
	ops := 0
	var worker func()
	worker = func() {
		if ops >= totalOps {
			return
		}
		ops++
		key := uint64(rng.Intn(nKeys) + 1)
		switch r := rng.Intn(6); {
		case r == 0: // delete
			w := &wrec{seq: uint64(len(writes[key]) + 1), del: true, start: s.Now()}
			writes[key] = append(writes[key], w)
			s.DeleteAsync(key, func(_ Duration, err error) {
				w.acked, w.err = err == nil, err
				worker()
				s.Flush()
			})
		case r <= 2: // set
			w := &wrec{seq: uint64(len(writes[key]) + 1), start: s.Now()}
			writes[key] = append(writes[key], w)
			s.SetAsync(key, val(key, w.seq), func(_ Duration, err error) {
				w.acked, w.err = err == nil, err
				worker()
				s.Flush()
			})
		default: // get
			start := s.Now()
			s.GetAsync(key, valLen, func(v []byte, _ Duration, ok bool) {
				reads = append(reads, rrec{key: key, start: start, end: s.Now(),
					val: append([]byte(nil), v...), miss: !ok})
				worker()
				s.Flush()
			})
		}
	}
	for i := 0; i < 12; i++ {
		worker()
	}
	s.Flush()
	crashAt := s.Now() + 500*sim.Microsecond
	s.CrashShard(0, failure.ProcessCrash, crashAt)
	if withRepair {
		// Lose every hint the crash accumulated, right before recovery
		// would have drained them (kv.BootstrapTime + kv.RebuildTime
		// after the crash): convergence must come from the repair
		// subsystem, not handoff. The drop must find hints to drop, or
		// a recovery-timing drift has silently degraded this test to
		// the plain hint-drain variant.
		s.tb.clu.Eng.At(crashAt+2249*sim.Millisecond, func() {
			if s.DropHints() == 0 {
				t.Error("nothing to drop at crash+2249ms — hints already drained; repair not exercised")
			}
		})
	}
	s.Run()
	s.Testbed().RunFor(4 * sim.Second) // recovery + handoff drain
	if ops != totalOps {
		t.Fatalf("history stalled at %d of %d ops", ops, totalOps)
	}
	if len(reads) == 0 {
		t.Fatal("history recorded no successful reads")
	}

	// Validate every read against the per-key write history. A hit's
	// value must come from a real (non-delete) write that did not start
	// after the read ended, and must be at least as new as the floor
	// every replica had already applied when the read began (replica
	// lag and handoff may serve older states only while some owner
	// still lacks the newer one; the cache only ever runs ahead). A
	// miss must be explainable by a delete: one no older than the
	// stable floor, issued before the read ended — absent that, the
	// read dropped a key every owner provably held.
	misses := 0
	for i, r := range reads {
		stable := uint64(0)
		for j, id := range s.Owners(r.key) {
			ownerMax := uint64(0)
			for _, a := range applies[r.key][id] {
				if a.at <= r.start && a.seq > ownerMax {
					ownerMax = a.seq
				}
			}
			if j == 0 || ownerMax < stable {
				stable = ownerMax
			}
		}
		if r.miss {
			misses++
			justified := false
			for _, w := range writes[r.key] {
				if w.del && w.start <= r.end && w.seq >= stable {
					justified = true
					break
				}
			}
			if !justified {
				t.Fatalf("read %d of key %d observed ABSENT although every owner held seq %d (a set) before the read began and no delete could explain it",
					i, r.key, stable)
			}
			continue
		}
		var match *wrec
		for _, w := range writes[r.key] {
			if !w.del && bytes.Equal(r.val, val(r.key, w.seq)) {
				match = w
				break
			}
		}
		if match == nil {
			t.Fatalf("read %d of key %d returned bytes no write produced", i, r.key)
		}
		if match.start > r.end {
			t.Fatalf("read %d of key %d returned a write issued after the read completed", i, r.key)
		}
		if match.seq < stable {
			t.Fatalf("read %d of key %d resurrected seq %d although every owner held >= seq %d before the read began",
				i, r.key, match.seq, stable)
		}
	}
	if misses == 0 {
		t.Fatal("history recorded no misses — deletes never surfaced to readers")
	}

	// The crash must actually have exercised the handoff machinery (or,
	// in the repair variant, the repair machinery standing in for the
	// hints it dropped), and the history must have exercised the
	// lifecycle subsystem: fabric deletes retiring extents and the
	// compactor relocating live ones underneath the readers.
	st := s.Stats()
	if st.HintsQueued == 0 {
		t.Fatal("history never queued a handoff hint")
	}
	if withRepair {
		if st.Probes == 0 {
			t.Fatal("read-repair probes never fired")
		}
		if st.AEPasses == 0 {
			t.Fatal("the anti-entropy sweeper never ran")
		}
		if st.RepairsApplied == 0 {
			t.Fatal("repairs never applied despite dropped hints")
		}
		// With hints lost, the repair subsystem must have fully
		// converged every key by the end of the run.
		allKeys := make([]uint64, nKeys)
		for i := range allKeys {
			allKeys[i] = uint64(i + 1)
		}
		if stale := s.StaleOwners(allKeys); stale != 0 {
			t.Fatalf("%d stale replicas after the repair history", stale)
		}
	} else if st.HintsApplied == 0 {
		t.Fatalf("history never exercised handoff (queued %d applied %d)", st.HintsQueued, st.HintsApplied)
	}
	if st.HintsPending != 0 {
		t.Fatalf("%d hints still pending after recovery window", st.HintsPending)
	}
	if st.DelOps == 0 || st.Deletes == 0 {
		t.Fatalf("history issued %d deletes, applied %d — deletes not in the loop", st.DelOps, st.Deletes)
	}
	if st.CompactPasses == 0 || st.CompactMoves == 0 {
		t.Fatalf("compaction not in the loop (passes %d, moves %d)", st.CompactPasses, st.CompactMoves)
	}
}

// Crash-during-write: inject a NodeCrash while a quorum write is in
// flight to one of its owners.
//
//	(a) W<N: the surviving owners acknowledge, the hint replays exactly
//	    once on reconnect;
//	(b) W=N: the write reports a typed *QuorumError;
//	(c) a second crash that kills the drain itself must not apply the
//	    hint twice — it stays queued and lands once, after the second
//	    recovery.
func TestServiceCrashDuringWriteQuorum(t *testing.T) {
	setup := func(quorum int) (*Service, uint64, int) {
		s := NewServiceWith(ServiceConfig{
			Shards: 3, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
			Replicas: 2, WriteQuorum: quorum, Buckets: 1 << 12,
		})
		const key = 33
		if err := s.Set(key, Value(key, 64)); err != nil {
			t.Fatal(err)
		}
		victim := s.Owners(key)[1] // crash a non-primary owner
		idx := 0
		for i := 0; i < s.NumShards(); i++ {
			if s.ShardID(i) == victim {
				idx = i
			}
		}
		return s, key, idx
	}

	// (a) W=1 of 2: quorum acks despite the crash; handoff replays once.
	s, key, idx := setup(1)
	s.CrashShard(idx, failure.ProcessCrash, s.Now()+sim.Microsecond)
	var aerr error
	done := false
	s.SetAsync(key, Value(key+1, 64), func(_ Duration, err error) { aerr, done = err, true })
	s.Flush()
	s.Testbed().RunFor(sim.Millisecond) // crash lands mid-quorum; timeout fails the dead owner
	if !done {
		t.Fatal("W<N write did not complete while one owner was crashing")
	}
	if aerr != nil {
		t.Fatalf("W<N write failed despite a live owner: %v", aerr)
	}
	st := s.Stats()
	if st.HintsQueued != 1 || st.HintsApplied != 0 {
		t.Fatalf("hints queued/applied %d/%d mid-crash, want 1/0", st.HintsQueued, st.HintsApplied)
	}
	s.Testbed().RunFor(4 * sim.Second)
	st = s.Stats()
	if st.HintsApplied != 1 || st.HintsPending != 0 {
		t.Fatalf("hint replayed %d times (pending %d), want exactly once", st.HintsApplied, st.HintsPending)
	}
	if v, ok := ownerValue(t, s, s.Owners(key)[1], key); !ok || !bytes.Equal(v, Value(key+1, 64)) {
		t.Fatal("recovered owner missing the handed-off write")
	}

	// (b) W=N: the same crash surfaces as a typed quorum error.
	s, key, idx = setup(2)
	s.CrashShard(idx, failure.ProcessCrash, s.Now()+sim.Microsecond)
	var berr error
	done = false
	s.SetAsync(key, Value(key+2, 64), func(_ Duration, err error) { berr, done = err, true })
	s.Flush()
	s.Testbed().RunFor(sim.Millisecond)
	if !done {
		t.Fatal("W=N write never completed")
	}
	var qe *QuorumError
	if !errors.As(berr, &qe) {
		t.Fatalf("W=N write during a crash returned %v, want *QuorumError", berr)
	}

	// (c) Double crash: the second crash kills the drain in flight; the
	// hint survives and applies exactly once after the second recovery.
	s, key, idx = setup(1)
	crashAt := s.Now() + sim.Microsecond
	s.CrashShard(idx, failure.ProcessCrash, crashAt)
	done = false
	s.SetAsync(key, Value(key+3, 64), func(_ Duration, err error) { done = true })
	s.Flush()
	// The first recovery's OnUp fires the drain; refreeze 1us later,
	// before the drain's chain can ack.
	recoverAt := crashAt + 2250*sim.Millisecond
	s.CrashShard(idx, failure.ProcessCrash, recoverAt+sim.Microsecond)
	s.Testbed().RunFor(2300 * sim.Millisecond)
	if !done {
		t.Fatal("write never completed")
	}
	st = s.Stats()
	if st.HintsApplied != 0 || st.HintsPending != 1 {
		t.Fatalf("drain survived the second crash: applied %d pending %d", st.HintsApplied, st.HintsPending)
	}
	s.Testbed().RunFor(4 * sim.Second) // second recovery drains for real
	st = s.Stats()
	if st.HintsApplied != 1 || st.HintsPending != 0 {
		t.Fatalf("hint applied %d times after a double crash, want exactly once", st.HintsApplied)
	}
	if v, ok := ownerValue(t, s, s.Owners(key)[1], key); !ok || !bytes.Equal(v, Value(key+3, 64)) {
		t.Fatal("double-crashed owner missing the handed-off write")
	}
	if st.Shards[idx].Rebuilds != 2 {
		t.Fatalf("victim rebuilt %d times, want 2", st.Shards[idx].Rebuilds)
	}
}

// Property test for cuckoo placement under interleaved fabric sets,
// deletes and gets: an acknowledged key is never lost (host-visible
// with exact bytes), NIC reachability matches candidate-bucket
// residency, and spills appear only under overload — never while the
// table has slack.
func TestServicePlacementProperty(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 1, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
		Buckets: 64, MaxValLen: 64,
	})
	sh := s.order[0]
	rng := workload.Rng(9)
	model := map[uint64][]byte{}
	const valLen = 48

	checkModel := func(step int) {
		table := sh.table.Table()
		for k, want := range model {
			va, vl, ok := table.Lookup(k)
			if !ok {
				t.Fatalf("step %d: acked key %d lost", step, k)
			}
			got, _ := sh.srv.node.Mem.Read(va, vl)
			if !bytes.Equal(got, want) {
				t.Fatalf("step %d: key %d bytes diverged", step, k)
			}
			// NIC gets agree exactly with candidate-bucket residency.
			atCandidate := false
			for fn := 0; fn < 2; fn++ {
				if kk, _, _, okb := table.EntryAt(table.Hash(k, fn)); okb && kk == k {
					atCandidate = true
				}
			}
			v, _, okGet := s.Get(k, valLen)
			if okGet != atCandidate {
				t.Fatalf("step %d: key %d NIC-get=%v but candidate-resident=%v", step, k, okGet, atCandidate)
			}
			if okGet && !bytes.Equal(v, want) {
				t.Fatalf("step %d: key %d NIC get returned wrong bytes", step, k)
			}
		}
	}

	op := func(step int, maxKey int) {
		key := uint64(rng.Intn(maxKey) + 1)
		switch r := rng.Intn(10); {
		case r < 6: // set (fabric path, host kick fallback)
			v := Value(key+uint64(step)<<20, valLen)
			if err := s.Set(key, v); err == nil {
				model[key] = v
			}
		case r < 8: // delete
			s.Delete(key)
			delete(model, key)
		default: // get of a random key
			s.Get(key, valLen)
		}
	}

	// Phase 1: light load (<50% of 64 buckets) — kicks may run, spills
	// must not: MaxKicks is never exhausted with this much slack.
	for i := 0; i < 300; i++ {
		op(i, 28)
	}
	checkModel(300)
	if st := s.Stats(); st.Spills != 0 {
		t.Fatalf("%d spills at <50%% load — spilling without exhausting MaxKicks", st.Spills)
	}

	// Phase 2: overload (up to 140% of capacity) — spills are now the
	// expected last resort, and acked keys still never disappear.
	for i := 300; i < 1200; i++ {
		op(i, 90)
	}
	checkModel(1200)
	if st := s.Stats(); st.Spills == 0 {
		t.Fatal("overload phase never spilled — the walk-exhaustion path went unexercised")
	}
}

// Regression: a failed kick walk must restore every evictee to the
// exact bucket it was taken from — including evictees that were
// SPILLED residents living at neither of their candidate buckets.
// Restoring such a key "by hash" would overwrite an unrelated resident
// and leave the walker key squatting in the spilled key's bucket.
func TestServicePlaceRollbackRestoresSpilledEvictee(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 1, ClientsPerShard: 1, Pipeline: 2, Mode: LookupSeq,
		Buckets: 16, MaxValLen: 32,
	})
	sh := s.order[0]
	tb := sh.table.Table()
	n := tb.NumBuckets()

	// A key S homed at a bucket that is NOT one of its candidates (the
	// shape Insert's neighborhood spill produces).
	var spilled, bucket uint64
	for k := uint64(1); k < 100000; k++ {
		b := (tb.Hash(k, 0) + 1) % n
		if b != tb.Hash(k, 0) && b != tb.Hash(k, 1) {
			spilled, bucket = k, b
			break
		}
	}
	if err := tb.WriteBucket(bucket, spilled, 0x1000, 8); err != nil {
		t.Fatal(err)
	}
	// Fill every other bucket so the walk can never succeed.
	filler := uint64(500000)
	for i := uint64(0); i < n; i++ {
		if i == bucket {
			continue
		}
		filler++
		if err := tb.WriteBucket(i, filler, 0x2000+i*8, 8); err != nil {
			t.Fatal(err)
		}
	}
	type ent struct{ k, va, vl uint64 }
	snap := make([]ent, n)
	for i := uint64(0); i < n; i++ {
		k, va, vl, _ := tb.EntryAt(i)
		snap[i] = ent{k, va, vl}
	}

	// A new key whose first candidate is S's bucket: the walk evicts S
	// first, grinds through the full table, and fails.
	var newKey uint64
	for k := uint64(600000); ; k++ {
		if tb.Hash(k, 0) == bucket && tb.Hash(k, 1) != bucket {
			newKey = k
			break
		}
	}
	if err := sh.place(newKey, 0x9000, 8, 1); err == nil {
		t.Fatal("place succeeded on a completely full table")
	}
	for i := uint64(0); i < n; i++ {
		k, va, vl, ok := tb.EntryAt(i)
		if !ok || k != snap[i].k || va != snap[i].va || vl != snap[i].vl {
			t.Fatalf("bucket %d changed across a failed walk: got (%d,%#x,%d) want (%d,%#x,%d)",
				i, k, va, vl, snap[i].k, snap[i].va, snap[i].vl)
		}
	}
}

// ---- extent lifecycle / delete suite ----

// Fabric deletes round-trip end to end: quorum-acked with real
// latency, gets miss afterward, and every retired value extent returns
// to the shard arenas through the to-free rings.
func TestServiceDeleteRoundTrip(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 4, ClientsPerShard: 2, Pipeline: 8, Mode: LookupSeq,
	})
	const nKeys = 400
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k, 64)); err != nil {
			t.Fatal(err)
		}
	}
	liveBefore := s.Stats().ArenaLive
	if liveBefore == 0 {
		t.Fatal("arena tracked no live bytes after the preload")
	}
	for k := uint64(1); k <= nKeys; k++ {
		if !s.Delete(k) {
			t.Fatalf("delete(%d) reported the key absent", k)
		}
	}
	for k := uint64(1); k <= nKeys; k++ {
		if _, _, ok := s.Get(k, 64); ok {
			t.Fatalf("get(%d) hit after delete", k)
		}
	}
	st := s.Stats()
	if st.DelOps != nKeys {
		t.Fatalf("delete ops %d, want %d", st.DelOps, nKeys)
	}
	if st.FabricDeletes == 0 {
		t.Fatal("no delete ever traveled the NIC tombstone chain")
	}
	if st.GCFreed == 0 {
		t.Fatal("no extent came back through the to-free ring")
	}
	if st.ArenaLive >= liveBefore {
		t.Fatalf("arena live bytes %d did not drop from %d", st.ArenaLive, liveBefore)
	}
	// Deleted keys' space is reusable: re-setting the same keys after
	// the purge (same per-shard load) must not grow the arena past its
	// previous footprint.
	foot := st.ArenaFoot
	for k := uint64(1); k <= nKeys; k++ {
		if err := s.Set(k, Value(k+1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().ArenaFoot; got > foot {
		t.Fatalf("arena footprint grew %d -> %d refilling freed space", foot, got)
	}
}

// Satellite regression: a value cached client-side for a hot key must
// not outlive that key's delete — the delete invalidates the cache, so
// the next get misses instead of serving deleted bytes.
func TestServiceDeleteInvalidatesHotCache(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 2, HotKeyCache: 8,
	})
	const hot = 99
	if err := s.Set(hot, Value(hot, 64)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, _, ok := s.Get(hot, 64); !ok {
			t.Fatal("hot get missed")
		}
	}
	if s.Stats().CacheHits == 0 {
		t.Fatal("key never became cache-served — test setup is wrong")
	}
	if !s.Delete(hot) {
		t.Fatal("delete failed")
	}
	if _, _, ok := s.Get(hot, 64); ok {
		t.Fatal("get after delete served a value (stale cache entry)")
	}
	// And the miss must not have re-admitted anything.
	if _, ok := s.cache[hot]; ok {
		t.Fatal("deleted key still resident in the client-side cache")
	}
}

// A tombstone hint supersedes an older value hint for the same key,
// and the recovery drain applies the delete — never resurrecting the
// value the dead owner missed.
func TestServiceDeleteHintSupersedesValueHint(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 3, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
		Replicas: 2, WriteQuorum: 1, Buckets: 1 << 12,
	})
	const key = 33
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatal(err)
	}
	victim := s.Owners(key)[1]
	idx := 0
	for i := 0; i < s.NumShards(); i++ {
		if s.ShardID(i) == victim {
			idx = i
		}
	}
	s.CrashShard(idx, failure.ProcessCrash, s.Now()+sim.Microsecond)
	s.Testbed().RunFor(sim.Millisecond)

	// A write the dead owner misses -> value hint. Then the delete ->
	// tombstone hint must supersede it. (The blocking wrappers return
	// at quorum; ride past the dead owner's MissTimeout so its failure
	// — and the hint — actually lands before asserting.)
	if err := s.Set(key, Value(key+1, 64)); err != nil {
		t.Fatalf("W=1 write failed: %v", err)
	}
	s.Testbed().RunFor(sim.Millisecond)
	if st := s.Stats(); st.HintsPending != 1 {
		t.Fatalf("hints pending %d after write-to-dead-owner, want 1", st.HintsPending)
	}
	if !s.Delete(key) {
		t.Fatal("delete failed")
	}
	s.Testbed().RunFor(sim.Millisecond)
	sh := s.shards[victim]
	h, ok := sh.hints[key]
	if !ok || !h.del {
		t.Fatalf("pending hint is not the tombstone (ok=%v del=%v)", ok, ok && h.del)
	}
	// Recovery drains the tombstone: the key must be gone EVERYWHERE —
	// in particular the recovered owner must not serve the hinted value.
	s.Testbed().RunFor(4 * sim.Second)
	for _, id := range s.Owners(key) {
		if _, okv := ownerValue(t, s, id, key); okv {
			t.Fatalf("owner %s resurrected a deleted key after handoff", id)
		}
	}
	st := s.Stats()
	if st.HintsPending != 0 {
		t.Fatalf("%d hints still pending after recovery", st.HintsPending)
	}
	if _, _, ok := s.Get(key, 64); ok {
		t.Fatal("get served a deleted key after recovery")
	}
}

// Background compaction keeps the arena bounded under churn and moves
// values without corrupting them, while skipping keys with writes in
// flight.
func TestServiceCompactionBoundsArena(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 1, ClientsPerShard: 2, Pipeline: 8, Mode: LookupSeq,
		Buckets: 1 << 12, MaxValLen: 256,
		CompactEvery: 5 * sim.Millisecond, SegmentSize: 8 << 10,
	})
	const nKeys = 200
	keys := make([]uint64, nKeys)
	for i := range keys {
		keys[i] = uint64(i + 1)
		if err := s.Set(keys[i], Value(keys[i], 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Sustained churn: overwrite and delete/reinsert across many
	// compaction ticks.
	rng := workload.Rng(5)
	for round := 0; round < 40; round++ {
		for i := 0; i < 50; i++ {
			k := keys[rng.Intn(nKeys)]
			if rng.Intn(4) == 0 {
				s.Delete(k)
				if err := s.Set(k, Value(k+uint64(round)<<24, 64)); err != nil {
					t.Fatal(err)
				}
			} else if err := s.Set(k, Value(k*7+uint64(round), 64)); err != nil {
				t.Fatal(err)
			}
		}
		s.Testbed().RunFor(2 * sim.Millisecond)
	}
	s.Run()
	st := s.Stats()
	if st.CompactPasses == 0 || st.CompactMoves == 0 {
		t.Fatalf("compaction never ran/moved (passes=%d moves=%d)", st.CompactPasses, st.CompactMoves)
	}
	if st.ArenaLive == 0 {
		t.Fatal("no live bytes tracked")
	}
	if st.ArenaFoot > 4*st.ArenaLive+2*(8<<10) {
		t.Fatalf("arena footprint %d unbounded vs %d live bytes despite compaction",
			st.ArenaFoot, st.ArenaLive)
	}
	// Every key still reads back its latest bytes through the NIC.
	sh := s.order[0]
	for _, k := range keys {
		va, vl, ok := sh.table.Table().Lookup(k)
		if !ok {
			continue // deleted in the final round and re-set under a mangled key
		}
		want, _ := sh.srv.node.Mem.Read(va, vl)
		got, _, okGet := s.Get(k, vl)
		if okGet && !bytes.Equal(got, want) {
			t.Fatalf("key %d bytes diverged after compaction", k)
		}
	}
}

// ---- replica repair suite ----

// crashIdx returns the index of the shard with the given id.
func crashIdx(t *testing.T, s *Service, id string) int {
	t.Helper()
	for i := 0; i < s.NumShards(); i++ {
		if s.ShardID(i) == id {
			return i
		}
	}
	t.Fatalf("no shard %q", id)
	return -1
}

// Satellite regression: a capacity-rejected owner used to stay stale
// forever (the write path deliberately dropped rejections from
// handoff). Now the rejection lands in the repair queue, and once the
// owner's table has room again the queue rolls it forward — with NO
// client traffic after the capacity frees.
func TestServiceRejectedOwnerConverges(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 4, Mode: LookupSeq,
		Replicas: 2, WriteQuorum: 1, Buckets: 16, MaxValLen: 64,
	})
	const key = 21
	owners := s.Owners(key)
	backup := s.shards[owners[1]]
	bt := backup.table.Table()

	// Stuff the backup's table completely full of filler keys so the
	// write's insert there is REJECTED (kick walk and neighborhoods
	// exhausted), while the primary applies normally.
	n := bt.NumBuckets()
	filler := uint64(500000)
	for i := uint64(0); i < n; i++ {
		filler++
		if err := bt.WriteBucket(i, filler, 0x2000+i*8, 8); err != nil {
			t.Fatal(err)
		}
	}

	err := s.Set(key, Value(key, 64))
	if err != nil {
		t.Fatalf("W=1 write failed despite a healthy primary: %v", err)
	}
	s.Testbed().RunFor(sim.Millisecond) // let the backup's rejection land
	if v, ok := ownerValue(t, s, owners[0], key); !ok || !bytes.Equal(v, Value(key, 64)) {
		t.Fatal("primary did not apply")
	}
	if _, ok := ownerValue(t, s, owners[1], key); ok {
		t.Fatal("backup applied into a full table — rejection never happened")
	}
	st := s.Stats()
	if st.RepairsQueued == 0 {
		t.Fatal("capacity rejection left no repair record (the pre-repair bug)")
	}
	if got := s.StaleOwners([]uint64{key}); got != 1 {
		t.Fatalf("stale replicas = %d, want 1 (the rejected backup)", got)
	}

	// Capacity frees (operator removes fillers) — and with ZERO further
	// client operations, the repair queue converges the backup.
	for i := uint64(0); i < n; i++ {
		bt.Delete(500001 + i)
	}
	s.Testbed().RunFor(100 * sim.Millisecond)
	if v, ok := ownerValue(t, s, owners[1], key); !ok || !bytes.Equal(v, Value(key, 64)) {
		t.Fatal("rejected backup never converged without client traffic")
	}
	if got := s.StaleOwners([]uint64{key}); got != 0 {
		t.Fatalf("stale replicas = %d after repair, want 0", got)
	}
	st = s.Stats()
	if st.RepairsApplied == 0 {
		t.Fatal("no repair recorded as applied")
	}
	// And the repaired bucket carries the write's version.
	if v, ok := bt.VersionOf(key); !ok || v != 1 {
		t.Fatalf("repaired backup version = %d,%v want 1,true", v, ok)
	}
}

// Satellite regression: a value admitted to the client-side cache from
// a stale owner (legal while the write's settle was pending) must not
// outlive the repair that converges the owner — the repair bumps the
// key's write epoch and drops the entry.
func TestServiceRepairInvalidatesStaleCache(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 2, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 2, WriteQuorum: 1, HotKeyCache: 8,
		ReadRepair: true, Buckets: 1 << 12,
		// A slow repair tick guarantees the stale value is admitted to
		// the cache BEFORE the repair converges the owner — the exact
		// ordering the epoch bump exists for.
		RepairEvery: 5 * sim.Millisecond,
	})
	const key = 99
	if err := s.Set(key, Value(key, 64)); err != nil {
		t.Fatal(err)
	}
	owners := s.Owners(key)

	// Crash the PRIMARY; overwrite v2 (backup acks the W=1 quorum, the
	// primary gets a hint); lose the hint. After recovery the primary
	// is stale at v1 — and ReadPrimary routes every get straight at it.
	idx := crashIdx(t, s, owners[0])
	s.CrashShard(idx, failure.ProcessCrash, s.Now()+sim.Microsecond)
	s.Testbed().RunFor(sim.Millisecond)
	if err := s.Set(key, Value(key+1, 64)); err != nil {
		t.Fatalf("W=1 overwrite failed: %v", err)
	}
	s.Testbed().RunFor(sim.Millisecond) // primary's failure + hint land
	if s.DropHints() == 0 {
		t.Fatal("no hint to drop — divergence not injected")
	}
	s.Testbed().RunFor(4 * sim.Second) // recovery + reconnect

	// Heat the key well past the admission threshold. Early gets serve
	// the stale v1 from the primary (and may admit it to the cache);
	// every hit probes the backup, whose newer version word flags the
	// skew and queues the repair.
	for i := 0; i < 3*cacheAdmitCount; i++ {
		s.Get(key, 64)
	}
	// The stale v1 must actually be cache-resident now (admitted from
	// the stale primary, with the repair still queued behind its tick):
	// that is the hazard under test.
	if v, cached := s.cache[key]; !cached || !bytes.Equal(v, Value(key, 64)) {
		t.Fatal("stale value not cache-resident before the repair — test lost its race")
	}
	s.Testbed().RunFor(50 * sim.Millisecond) // repair queue drains

	// The repaired primary AND the cache must now serve v2: without the
	// epoch bump the cache would pin the pre-repair v1 forever.
	val, _, ok := s.Get(key, 64)
	if !ok || !bytes.Equal(val, Value(key+1, 64)) {
		t.Fatalf("get after repair returned stale bytes (ok=%v)", ok)
	}
	if v, ok := ownerValue(t, s, owners[0], key); !ok || !bytes.Equal(v, Value(key+1, 64)) {
		t.Fatal("primary never repaired")
	}
	st := s.Stats()
	if st.Probes == 0 {
		t.Fatal("read-repair never probed")
	}
	if st.ProbeSkews == 0 {
		t.Fatal("version skew never detected")
	}
	if st.RepairsApplied == 0 {
		t.Fatal("no repair applied")
	}
}

// Anti-entropy alone — zero reads, no read-repair, hints lost — must
// converge crash-era divergence: the sweeper's segment digests find
// the keys the dead owner missed and roll it forward.
func TestServiceAntiEntropyConvergesWithoutReads(t *testing.T) {
	s := NewServiceWith(ServiceConfig{
		Shards: 3, ClientsPerShard: 1, Pipeline: 8, Mode: LookupSeq,
		Replicas: 2, WriteQuorum: 1, Buckets: 1 << 10,
		AntiEntropyEvery: 200 * sim.Microsecond, AntiEntropySegments: 16,
	})
	keys := make([]uint64, 60)
	for i := range keys {
		keys[i] = uint64(i + 1)
		if err := s.Set(keys[i], Value(keys[i], 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash one shard; overwrite everything at v2 and delete a few keys
	// (their tombstones must propagate too); drop every hint.
	s.CrashShard(0, failure.ProcessCrash, s.Now()+sim.Microsecond)
	s.Testbed().RunFor(sim.Millisecond)
	for _, k := range keys {
		if err := s.Set(k, Value(k+1000, 64)); err != nil {
			t.Fatalf("W=1 overwrite of %d failed: %v", k, err)
		}
	}
	for _, k := range keys[:5] {
		s.DeleteAsync(k, nil)
	}
	s.Flush()
	s.Testbed().RunFor(2 * sim.Millisecond)
	if s.DropHints() == 0 {
		t.Fatal("no hints to drop — the crashed shard owned nothing?")
	}
	if s.StaleOwners(keys) == 0 {
		t.Fatal("no divergence injected — test shape is wrong")
	}

	// ZERO further client operations: recovery arms the sweeper, the
	// sweeper finds the divergent segments, the queue repairs them.
	s.Testbed().RunFor(6 * sim.Second)
	if got := s.StaleOwners(keys); got != 0 {
		t.Fatalf("%d stale replicas after anti-entropy alone, want 0", got)
	}
	// Deleted keys must be ABSENT everywhere — a resurrected delete
	// would show up as a hit.
	for _, k := range keys[:5] {
		if _, _, ok := s.Get(k, 64); ok {
			t.Fatalf("deleted key %d resurrected by anti-entropy", k)
		}
	}
	st := s.Stats()
	if st.AEPasses == 0 {
		t.Fatal("sweeper never ran")
	}
	if st.AERepairs == 0 {
		t.Fatal("sweeper found nothing despite injected divergence")
	}
	if st.RepairsApplied == 0 {
		t.Fatal("no repairs applied")
	}
	if st.Probes != 0 {
		t.Fatal("probes fired with ReadRepair disabled")
	}
}
