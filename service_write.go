package redn

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hopscotch"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

// The fabric write path.
//
// A Service set fans out to the key's LookupN replica owners. On each
// owner the coordinator computes a bucket claim from its view of that
// owner's table — overwrite in place when the key already sits at a
// candidate bucket, claim the first empty candidate otherwise — and
// issues it through the owner's Client.SetAsync pipeline, where the
// NIC's CAS-claim chain (core.SetOffload) installs the key and
// repoints the bucket at the staged value. Keys that need cuckoo-kick
// relocation (both candidates taken) or that live in spilled
// neighborhood slots fall back to the host CPU at a modeled two-sided
// RPC cost; a claim refused by the CAS (a racing writer won the
// bucket) rolls forward on the host the same way.
//
// The write acknowledges to the caller once W = WriteQuorum owners
// have applied it. Owners that fail — frozen NIC, host down, suspected
// dead — receive a handoff hint instead: the newest value that owner
// is missing, keyed by the write's per-key sequence number. Hints
// drain when the owner proves reachable again (crash recovery's OnUp,
// or a successful get through it) and are applied exactly once; a
// newer write to the same key supersedes a pending hint, so a drain
// can never resurrect a stale value. Quorum failures (more than N-W
// owners down) surface as *QuorumError, with the owners that did
// apply left in place and the missing ones rolled forward via hints —
// never rolled back.
//
// Same-key writes are serialized per owner (inflightSet): the
// coordinator is the single write path, so per-key order is issue
// order everywhere, which is what the sequence numbers certify.

// HostSetLat models the cost of a write that must involve the owner's
// CPU: a two-sided RPC (SEND + handler + response) plus the insert
// itself — the §5.4 "writes stay on the CPU path" cost the fabric
// claim chain avoids.
const HostSetLat = 2500 * sim.Nanosecond

// ErrReservedKey reports a write or delete of a key in the reserved
// pending/tombstone id space (hopscotch.PendingBit set): the fabric
// claim machinery depends on those words never being resident keys, so
// the async paths reject them exactly as the tables' host-side inserts
// do.
var ErrReservedKey = errors.New("redn: key uses the reserved pending/tombstone id space")

// QuorumError reports a write that could not reach its W-of-N quorum.
// Replicas that did apply are rolled forward via hinted handoff; the
// write may still complete after the down owners recover.
type QuorumError struct {
	Key    uint64
	Acks   int // owners that applied before the quorum was declared dead
	Need   int // W, the configured write quorum
	Owners int
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("redn: write quorum failed for key %#x: %d/%d acks (W=%d)",
		e.Key, e.Acks, e.Owners, e.Need)
}

// ErrOverload reports a write or delete shed by admission control:
// too few replica owners' NICs had queue headroom to admit it while
// still reaching the W-of-N quorum. Nothing was applied anywhere — no
// sequence number was issued and no owner saw the op — so the caller
// can safely back off and retry the identical request.
type ErrOverload struct {
	Key   uint64
	Admit int // owners that could have admitted the op
	Need  int // W, the configured write quorum
}

func (e *ErrOverload) Error() string {
	return fmt.Sprintf("redn: overload: key %#x shed, %d of %d required owners can admit",
		e.Key, e.Admit, e.Need)
}

// admitWrite counts owners with admission headroom and sheds the op
// when a quorum cannot be formed from them. Returns true when the
// write may proceed; on false the typed *ErrOverload has already been
// scheduled onto cb and no coordinator state was touched.
func (s *Service) admitWrite(key uint64, cb func(lat Duration, err error)) bool {
	if !s.cfg.Admission {
		return true
	}
	admit := 0
	for _, id := range s.owners(key) {
		if !s.overloaded(s.shards[id]) {
			admit++
		}
	}
	if admit >= s.cfg.WriteQuorum {
		return true
	}
	s.shedWrites.Inc()
	err := &ErrOverload{Key: key, Admit: admit, Need: s.cfg.WriteQuorum}
	s.tb.clu.Eng.After(0, func() {
		if cb != nil {
			cb(0, err)
		}
	})
	return false
}

// hint is one queued handoff write: the newest value — or tombstone —
// an unreachable owner is missing. A delete hint (del=true) carries no
// bytes; by living in the same per-key slot and sequence order as
// value hints, it supersedes any older value hint for the key, and a
// drain replays it as a delete — so a recovering owner can never
// resurrect a key deleted while it was down.
type hint struct {
	key, seq uint64
	val      []byte
	del      bool
	op       *setOp
	draining bool
	settled  bool
}

// setOp tracks one client-visible write (or delete: del=true) across
// its owner fan-out.
type setOp struct {
	key, seq     uint64
	del          bool
	need, owners int
	acks, fails  int
	start        sim.Time
	cb           func(lat Duration, err error)
	done         bool
	settleLeft   int
	traceOp      uint64

	// Latency provenance (nil with it off): the op's phase ledger. At
	// the quorum-completing ack the critical leg's receipt is adopted
	// into it and the coordinator remainder (fan-out dispatch, per-key
	// write-slot queueing, quorum stitching) becomes the coord phase.
	// lastAckAt times the previous ack so the quorum ack can report
	// the straggler gap it spent waiting on its slowest counted leg.
	rcpt      *telemetry.Receipt
	lastAckAt sim.Time
}

// traceName is the op span name this write opened under: deletes and
// sets share setOp, so the quorum-settling OpEnd must pick the right
// pair.
func (op *setOp) traceName() string {
	if op.del {
		return "del"
	}
	return "set"
}

func (op *setOp) ack(s *Service) {
	op.acks++
	now := s.tb.Now()
	if !op.done && op.acks >= op.need {
		op.done = true
		s.tr.OpEnd(op.traceOp, op.traceName())
		if op.rcpt != nil {
			// This ack completed the quorum, so the leg whose callback
			// is running is the critical leg: adopt its phase ledger
			// and charge everything it doesn't cover — fan-out
			// dispatch, per-key write-slot queueing, quorum stitching
			// — to the coord phase, keeping the partition exact.
			r := op.rcpt
			if s.legValid {
				r.AdoptLeg(&s.legRcpt)
			}
			if coord := (now - op.start) - r.PhaseSum(); coord > 0 {
				r.AddPhase(telemetry.PhaseCoord, coord)
			}
			if op.lastAckAt != 0 {
				r.Straggler = now - op.lastAckAt
			}
			r.Total = r.PhaseSum()
			s.prov.Record(r)
		}
		if op.cb != nil {
			op.cb(now-op.start, nil)
		}
	}
	op.lastAckAt = now
}

func (op *setOp) fail(s *Service) {
	op.fails++
	if !op.done && op.fails > op.owners-op.need {
		op.done = true
		s.tr.OpEnd(op.traceOp, op.traceName())
		s.quorumFails.Inc()
		now := s.tb.Now()
		if op.rcpt != nil {
			// Quorum dead: no critical leg to adopt — the whole span
			// was coordinator-side waiting on owners that never came.
			r := op.rcpt
			r.Censored = true
			if coord := (now - op.start) - r.PhaseSum(); coord > 0 {
				r.AddPhase(telemetry.PhaseCoord, coord)
			}
			r.Total = r.PhaseSum()
			s.prov.Record(r)
		}
		if op.cb != nil {
			op.cb(now-op.start, &QuorumError{
				Key: op.key, Acks: op.acks, Need: op.need, Owners: op.owners})
		}
	}
}

// noteLegReceipt stages one owner leg's client receipt for the quorum
// accounting that may consume it synchronously (setOp.ack). nil (dead
// connection, no slot reached) clears the stage.
func (s *Service) noteLegReceipt(r *telemetry.Receipt) {
	if s.prov == nil {
		return
	}
	if r == nil {
		s.legValid = false
		return
	}
	s.legRcpt = *r
	s.legValid = true
}

// noteHostLeg stages a synthesized ledger for an owner leg that ran on
// the host CPU path: the whole leg is one host phase of the modeled
// RPC latency.
func (s *Service) noteHostLeg(lat Duration) {
	if s.prov == nil {
		return
	}
	now := s.tb.Now()
	s.legRcpt.Reset(0, telemetry.ClassSet, now-lat)
	s.legRcpt.AddPhase(telemetry.PhaseHost, lat)
	s.legRcpt.Total = lat
	s.legValid = true
}

// clearLegReceipt invalidates the staged leg ledger; apply paths with
// no measurable leg (a trivially-absent delete) call it so the quorum
// ack cannot adopt an earlier leg's stale note.
func (s *Service) clearLegReceipt() { s.legValid = false }

// settleOne records that one more owner has resolved this write
// (applied, drained, or superseded); when the last one does, the
// write's value can no longer appear anywhere it has not already, and
// the key becomes cache-admissible again.
func (op *setOp) settleOne(s *Service) {
	op.settleLeft--
	if op.settleLeft != 0 {
		return
	}
	if s.unsettled[op.key]--; s.unsettled[op.key] <= 0 {
		delete(s.unsettled, op.key)
	}
	if s.settleHook != nil {
		s.settleHook(op.key, op.seq)
	}
}

// SetAsync stores key -> value on its replica owners through the
// fabric and returns immediately; cb runs when the W-of-N quorum has
// acknowledged (err == nil) or can no longer be reached (err is a
// *QuorumError). Sets have real modeled latency — a NIC CAS-claim
// chain per owner — and pipeline like gets; call Flush after posting a
// batch. The write-through cache and the key's write epoch update at
// issue time, so a reader of this coordinator observes its own writes
// immediately and a racing get can never install a stale cache entry.
func (s *Service) SetAsync(key uint64, value []byte, cb func(lat Duration, err error)) {
	key &= hopscotch.KeyMask
	s.sentinelKick()
	if key&hopscotch.PendingBit != 0 || key == 0 {
		// The reserved id space (pending/tombstone words) would void the
		// claim chain's published/unpublished distinction, and key 0's
		// control word is the empty-bucket marker; reject both on the
		// fabric path exactly as the tables do on the host path.
		s.tb.clu.Eng.After(0, func() {
			if cb != nil {
				cb(0, ErrReservedKey)
			}
		})
		return
	}
	if !s.admitWrite(key, cb) {
		return
	}
	s.setOps.Inc()
	s.nextSeq[key]++
	seq := s.nextSeq[key]
	s.unsettled[key]++
	if s.cache != nil {
		s.setEpoch[key]++
		if _, ok := s.cache[key]; ok {
			s.cache[key] = append([]byte(nil), value...)
		}
	}
	owners := s.owners(key)
	extras := s.dualWriteExtras(owners, key)
	op := &setOp{key: key, seq: seq, need: s.cfg.WriteQuorum, owners: len(owners),
		start: s.tb.Now(), cb: cb, settleLeft: len(owners) + len(extras),
		traceOp: s.tr.OpBegin("set", key)}
	if s.prov != nil {
		op.rcpt = &telemetry.Receipt{}
		op.rcpt.Reset(op.traceOp, telemetry.ClassSet, op.start)
		op.rcpt.Legs = uint8(len(owners))
	}
	val := append([]byte(nil), value...)
	for idx, id := range owners {
		sh := s.shards[id]
		legID := op.traceOp<<4 | uint64(idx)
		if s.tr.Enabled() {
			s.tr.AsyncBegin("leg", legID, "leg:"+sh.id, op.traceOp)
		}
		s.ownerSet(sh, key, val, seq, op.traceOp, func(st ownerWriteStatus) {
			if s.tr.Enabled() {
				s.tr.AsyncEnd("leg", legID, "leg:"+sh.id, op.traceOp)
			}
			switch st {
			case ownerApplied:
				if s.applyHook != nil {
					s.applyHook(sh.id, key, seq)
				}
				sh.noteApplied(key, seq)
				s.dropHint(sh, key, seq)
				if op.rcpt != nil {
					op.rcpt.Leg = uint8(idx)
				}
				op.ack(s)
				op.settleOne(s)
			case ownerUnreachable:
				s.queueHint(sh, key, val, false, seq, op)
				op.fail(s)
			case ownerRejected:
				// Definitive refusal — but no longer a silent divergence:
				// the repair queue records the laggard so read-repair or
				// anti-entropy rolls it forward once capacity frees
				// (pre-repair, a rejected owner simply stayed stale until
				// the next overwrite).
				s.queueRepair(sh, key, seq)
				op.fail(s)
				op.settleOne(s)
			}
		})
	}
	for idx, id := range extras {
		sh := s.shards[id]
		legID := op.traceOp<<4 | uint64(len(owners)+idx)
		if s.tr.Enabled() {
			s.tr.AsyncBegin("leg", legID, "aux:"+sh.id, op.traceOp)
		}
		s.ownerSet(sh, key, val, seq, op.traceOp, func(st ownerWriteStatus) {
			if s.tr.Enabled() {
				s.tr.AsyncEnd("leg", legID, "aux:"+sh.id, op.traceOp)
			}
			// Auxiliary dual-write leg (resharding handover): the quorum
			// is counted over the post-change owners exclusively — a
			// departing owner's outcome only settles, so it can neither
			// ack a write the new owners lost nor fail one they hold. No
			// hint on failure either: the new owners are the write's
			// future, and the dual-read fallback this leg serves reaches
			// them first.
			if st == ownerApplied {
				if s.applyHook != nil {
					s.applyHook(sh.id, key, seq)
				}
				sh.noteApplied(key, seq)
				s.dropHint(sh, key, seq)
			}
			op.settleOne(s)
		})
	}
}

// withKeySlot serializes same-key work on one owner: run executes
// immediately if the (owner, key) write slot is free, else it queues
// behind the in-flight write. Every run must end by calling setNext.
func (s *Service) withKeySlot(sh *serviceShard, key uint64, run func()) {
	if q, busy := sh.inflightSet[key]; busy {
		sh.inflightSet[key] = append(q, run)
		return
	}
	sh.inflightSet[key] = nil
	run()
}

// ownerSet applies one write on one owner, serializing same-key writes
// so per-key order survives the pipelined fabric. done always runs
// asynchronously (from the simulation).
func (s *Service) ownerSet(sh *serviceShard, key uint64, val []byte, ver uint64, top uint64, done func(st ownerWriteStatus)) {
	s.armCompaction(sh)
	s.armAntiEntropy()
	s.withKeySlot(sh, key, func() {
		s.ownerSetNow(sh, key, val, ver, top, func(st ownerWriteStatus) {
			done(st)
			s.setNext(sh, key)
		})
	})
}

// setNext releases the per-(owner,key) write slot and issues the next
// queued same-key write, if any.
func (s *Service) setNext(sh *serviceShard, key uint64) {
	if q := sh.inflightSet[key]; len(q) > 0 {
		next := q[0]
		sh.inflightSet[key] = q[1:]
		next()
		return
	}
	delete(sh.inflightSet, key)
}

// ownerWriteStatus classifies one owner write's outcome. The
// distinction matters for handoff: an unreachable owner gets a hint
// (the write applies at recovery), a definitive rejection — the table
// refused the insert — does not: deferring a capacity failure would
// resurrect a write its caller was told failed.
type ownerWriteStatus int

const (
	ownerApplied ownerWriteStatus = iota
	ownerUnreachable
	ownerRejected
)

// ownerSetNow routes one owner write: fabric claim chain when the key
// can be claimed at a candidate bucket, host CPU otherwise, handoff
// failure when neither can run. ver is the write's quorum sequence,
// published into the bucket's version word by whichever path applies.
func (s *Service) ownerSetNow(sh *serviceShard, key uint64, val []byte, ver uint64, top uint64, done func(st ownerWriteStatus)) {
	now := s.tb.Now()
	if sh.suspect(now) {
		// Circuit breaker: don't burn a MissTimeout per write on a
		// shard the read path already declared dead.
		s.tb.clu.Eng.After(0, func() { done(ownerUnreachable) })
		return
	}
	claim, fabric := sh.claimFor(key)
	if !fabric {
		if sh.hostDown {
			s.tb.clu.Eng.After(0, func() { done(ownerUnreachable) })
			return
		}
		s.hostSet(sh, key, val, ver, done)
		return
	}
	sh.fabricSets.Inc()
	// An acked fabric set repoints the bucket at the chain's staging
	// extent; the old extent — captured here, under the per-key write
	// slot — is retired on the ack, after the read-grace period.
	oldVa, _, hadOld := sh.table.table.Lookup(key)
	cli := sh.setClient(key)
	s.tr.SetOp(top)
	cli.SetAsyncClaim(key, val, claim, ver, func(_ Duration, ok bool) {
		if ok {
			sh.consecMiss = 0
			sh.suspectUntil = 0
			sh.sets.Inc()
			if hadOld {
				sh.retireExtent(oldVa)
			}
			s.noteLegReceipt(cli.LastReceipt(OpSet))
			done(ownerApplied)
			return
		}
		if !cli.LastSetExecuted() {
			// The chain never ran: dead NIC, count toward suspicion.
			s.noteOwnerMiss(sh)
		}
		// Claim refused (a racing writer took the bucket) or the NIC is
		// gone: roll forward on the CPU if the host is up.
		if sh.hostDown {
			done(ownerUnreachable)
			return
		}
		s.hostSet(sh, key, val, ver, done)
	})
	s.tr.SetOp(0)
	// Writes issued from completion callbacks run outside the caller's
	// batch; kick them directly, like get retries.
	cli.Flush()
}

// setClient picks the owner connection a key's writes always use —
// deterministic by key, so same-key writes share one ordered QP.
func (sh *serviceShard) setClient(key uint64) *Client {
	return sh.clients[int(key)%len(sh.clients)]
}

// claimForTable computes key's bucket claim against a table, honoring
// the lookup mode's probe reach. The bool result reports whether the
// fabric can carry this write: false means only the host can run it —
// cuckoo-kick relocation (all reachable candidates taken), or the key
// lives in a spilled neighborhood slot the NIC cannot address (a NIC
// claim would install an unreadable duplicate). Shared by the service
// router and the standalone client so the two views cannot drift.
func claimForTable(t *hopscotch.Table, mode LookupMode, key uint64) (core.SetClaim, bool) {
	kc := core.ClaimCtrl(key)
	probes := 2
	if mode == LookupSingle {
		// Single-probe lookups read H1 only; a claim at H2 would be
		// acknowledged yet permanently unreadable.
		probes = 1
	}
	for fn := 0; fn < probes; fn++ {
		b := t.Hash(key, fn)
		if k, _, _, ok := t.EntryAt(b); ok && k == key {
			return core.SetClaim{BucketAddr: t.BucketAddr(b), Expect: kc, New: kc}, true
		}
	}
	if _, _, ok := t.Lookup(key); ok {
		// Resident but not at a reachable candidate bucket: only the
		// CPU's neighborhood scan can update it.
		return core.SetClaim{}, false
	}
	for fn := 0; fn < probes; fn++ {
		b := t.Hash(key, fn)
		if _, _, _, ok := t.EntryAt(b); !ok {
			// A free candidate is either genuinely empty (CAS against
			// zero) or tombstoned by an earlier delete — the claim CAS
			// reclaims the tombstone in place, keeping delete churn on
			// the fabric instead of bouncing every reinsert to the host.
			// Fresh claims install the PENDING word: the bucket still
			// carries its previous occupant's stale [valAddr, valLen],
			// so the chain publishes NOOP|key only after the repoint —
			// otherwise a concurrent lookup could resurrect the old
			// extent through the stale pointer.
			claim := core.SetClaim{BucketAddr: t.BucketAddr(b),
				New: core.ClaimPendingCtrl(key)}
			if t.TombstoneAt(b) {
				claim.Expect = hopscotch.Tombstone
			}
			return claim, true
		}
	}
	return core.SetClaim{}, false
}

// claimFor computes key's bucket claim from the owner's table.
func (sh *serviceShard) claimFor(key uint64) (core.SetClaim, bool) {
	return claimForTable(sh.table.table, sh.mode, key)
}

// deleteClaimForTable computes key's delete claim against a table,
// honoring the lookup mode's probe reach. The bool result reports
// whether the fabric can carry the delete: the key must sit at a
// candidate bucket the NIC addresses — spilled residents (and keys not
// present at all) are the host's business. Shared by the service
// router and the standalone client, like claimForTable.
func deleteClaimForTable(t *hopscotch.Table, mode LookupMode, key uint64) (core.DeleteClaim, bool) {
	probes := 2
	if mode == LookupSingle {
		probes = 1
	}
	for fn := 0; fn < probes; fn++ {
		b := t.Hash(key, fn)
		if k, _, _, ok := t.EntryAt(b); ok && k == key {
			return core.DeleteClaim{BucketAddr: t.BucketAddr(b)}, true
		}
	}
	return core.DeleteClaim{}, false
}

// probeTargetForTable computes key's version-probe target against a
// table, honoring the lookup mode's probe reach: the candidate bucket
// holding the key, which is the only bucket the NIC probe chain can
// interrogate. Spilled residents, tombstones and absent keys are the
// repair layer's host-side comparison. Shared by the service router and
// the standalone client, like claimForTable.
func probeTargetForTable(t *hopscotch.Table, mode LookupMode, key uint64) (core.ProbeTarget, bool) {
	probes := 2
	if mode == LookupSingle {
		probes = 1
	}
	for fn := 0; fn < probes; fn++ {
		b := t.Hash(key, fn)
		if k, _, _, ok := t.EntryAt(b); ok && k == key {
			return core.ProbeTarget{BucketAddr: t.BucketAddr(b)}, true
		}
	}
	return core.ProbeTarget{}, false
}

// hostSet applies one owner write on the host CPU at the modeled
// two-sided RPC cost: the kick path, and the roll-forward path for
// refused claims.
func (s *Service) hostSet(sh *serviceShard, key uint64, val []byte, ver uint64, done func(st ownerWriteStatus)) {
	sh.hostSets.Inc()
	s.tb.clu.Eng.After(HostSetLat, func() {
		if sh.hostDown {
			// Crashed while the RPC was in flight.
			done(ownerUnreachable)
			return
		}
		if err := sh.set(key, val, ver); err != nil {
			// The table itself refused (kick walk and neighborhoods
			// exhausted): a definitive rejection, not unavailability.
			done(ownerRejected)
			return
		}
		s.noteHostLeg(HostSetLat)
		done(ownerApplied)
	})
}

// queueHint records the newest value (or tombstone: del=true) an
// unreachable owner is missing. An older pending hint for the same key
// is superseded (its write is settled — a newer value stands in for
// it); an incoming write older than the pending hint settles
// immediately. Because supersession is purely by sequence number, a
// tombstone hint replaces any older value hint — and a value hint
// newer than a pending tombstone replaces it just as correctly (the
// delete happened-before the new write).
func (s *Service) queueHint(sh *serviceShard, key uint64, val []byte, del bool, seq uint64, op *setOp) {
	// A leg can resolve after its target left the service entirely (a
	// drain completed while the write was in flight): there is no owner
	// to hand off to, and the new owners carry the write — just settle.
	if s.shards[sh.id] != sh {
		sh.hintsDropped.Inc()
		op.settleOne(s)
		return
	}
	// Hints aimed at a shard mid-drain redirect to the key's new
	// primary: the draining owner will be gone before it could drain
	// them, and an acked write must survive its departure.
	if s.draining(sh.id) {
		if to := s.redirectTarget(key, sh); to != nil {
			s.migHintsRedirected.Inc()
			s.queueHint(to, key, val, del, seq, op)
			return
		}
	}
	if cur, ok := sh.hints[key]; ok {
		if cur.seq >= seq {
			sh.hintsDropped.Inc()
			op.settleOne(s)
			return
		}
		sh.hintsDropped.Inc()
		s.settleHint(cur)
	}
	sh.hints[key] = &hint{key: key, seq: seq, val: val, del: del, op: op}
	sh.hintsQueued.Inc()
	if s.tr.Enabled() {
		s.tr.Instant("coordinator", "hint:"+sh.id, op.traceOp)
	}
}

// dropHint discards a pending hint made redundant by a successful
// newer (or equal) write to the same owner.
func (s *Service) dropHint(sh *serviceShard, key, seq uint64) {
	if cur, ok := sh.hints[key]; ok && cur.seq <= seq {
		delete(sh.hints, key)
		sh.hintsDropped.Inc()
		s.settleHint(cur)
	}
}

// settleHint settles a hint's originating write exactly once.
func (s *Service) settleHint(h *hint) {
	if h.settled {
		return
	}
	h.settled = true
	h.op.settleOne(s)
}

// drainHints hands off every pending hint to a reachable owner, in
// key order for determinism.
func (s *Service) drainHints(sh *serviceShard) {
	if len(sh.hints) == 0 {
		return
	}
	keys := make([]uint64, 0, len(sh.hints))
	for k := range sh.hints {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		s.drainHint(sh, k)
	}
}

// drainHint replays one hint through the ordinary owner write path.
// On failure (the owner died again mid-drain) the hint stays queued
// for the next recovery — it is applied exactly once, when a drain
// finally succeeds. Staleness is re-checked when the drain actually
// reaches the owner's per-key write slot: a drain queued behind an
// in-flight newer write for the same key must never replay the old
// value over it. On success, a hint queued while this one was in
// flight (a newer failed write) drains immediately after.
func (s *Service) drainHint(sh *serviceShard, key uint64) {
	h, ok := sh.hints[key]
	if !ok || h.draining {
		return
	}
	h.draining = true
	s.withKeySlot(sh, key, func() {
		if cur, still := sh.hints[key]; !still || cur != h {
			// Dropped or replaced while queued: a newer write already
			// reached this owner (or superseded the hint). Skip, and
			// pick up whatever hint stands now.
			h.draining = false
			s.setNext(sh, key)
			s.drainHint(sh, key)
			return
		}
		apply := func(done func(st ownerWriteStatus)) {
			if h.del {
				s.ownerDeleteNow(sh, key, h.seq, 0, done)
			} else {
				s.ownerSetNow(sh, key, h.val, h.seq, 0, done)
			}
		}
		apply(func(st ownerWriteStatus) {
			h.draining = false
			switch st {
			case ownerApplied:
				if s.applyHook != nil {
					s.applyHook(sh.id, key, h.seq)
				}
				if h.del {
					sh.noteDeleted(key, h.seq)
				} else {
					sh.noteApplied(key, h.seq)
				}
				if cur, still := sh.hints[key]; still && cur == h {
					delete(sh.hints, key)
					sh.hintsApplied.Inc()
					s.settleHint(h)
				}
			case ownerRejected:
				// The recovered table refused the replay (capacity):
				// retrying forever would spin, so retire the hint.
				if cur, still := sh.hints[key]; still && cur == h {
					delete(sh.hints, key)
					sh.hintsDropped.Inc()
					s.settleHint(h)
				}
			}
			s.setNext(sh, key)
			if st == ownerApplied {
				s.drainHint(sh, key)
			}
		})
	})
}
